"""Per-rank worker: a chunked, stealable cuTS search.

Each rank owns a full copy of the data graph (paper §4.2 — only partial
paths move between nodes), a simulated device, and a LIFO stack of
:class:`WorkItem` chunks.  Popping from the deep end gives the DFS side
of the hybrid scan (bounded memory); every processed chunk is a natural
point to check for free ranks, exactly Algorithm 3's chunk loop.

Work shipping uses structural sharing: a :class:`~repro.storage.trie
.PathTrie` level list is immutable, so a child work item extends its
parent's trie by one level without copying, and
:meth:`~repro.storage.trie.PathTrie.extract_subtrie` +
:func:`~repro.storage.serialize.serialize_trie` produce the flat buffer
that "sends the trie along with the work".

Fault tolerance: every work item carries *provenance* — the contiguous
interval ``[lo, hi)`` of its origin rank's root-candidate rows it
descends from, plus a re-execution generation.  Root frontiers are only
ever sliced contiguously (chunking and surplus splits take prefixes), so
the mapping stays exact and the runtime's
:class:`~repro.distributed.protocol.StrideLedger` can account for every
embedding per interval.  When a rank dies, its intervals are purged
everywhere (:meth:`purge_intervals`) and re-executed from the root on a
survivor (:meth:`adopt_root_intervals`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher
from ..graph.csr import CSRGraph
from ..storage.serialize import deserialize_trie, serialize_trie
from ..storage.trie import PathTrie, TrieLevel
from .protocol import BufferMeta, StrideKey, StrideLedger, WorkEnvelope

__all__ = ["WorkItem", "RankWorker"]


def _interval_gaps(
    roots: int, committed: list[tuple[int, int]] | None
) -> list[tuple[int, int]]:
    """The sub-intervals of ``[0, roots)`` not covered by ``committed``."""
    if not committed:
        return [(0, roots)]
    gaps: list[tuple[int, int]] = []
    cursor = 0
    for lo, hi in sorted(committed):
        lo, hi = max(0, int(lo)), min(roots, int(hi))
        if lo > cursor:
            gaps.append((cursor, lo))
        cursor = max(cursor, hi)
    if cursor < roots:
        gaps.append((cursor, roots))
    return gaps


@dataclass(frozen=True)
class WorkItem:
    """A frontier chunk awaiting expansion.

    Invariant: ``trie.depth == step`` — the deepest trie level holds the
    paths of query step ``step - 1`` and ``frontier`` indexes into it.

    ``origin``/``lo``/``hi``/``gen`` are the fault-tolerance provenance:
    the item's paths all descend from rows ``[lo, hi)`` of rank
    ``origin``'s root partition, at re-execution generation ``gen``.
    ``origin == -1`` marks an untracked item (standalone worker use).
    """

    trie: PathTrie
    step: int
    frontier: np.ndarray
    origin: int = -1
    lo: int = 0
    hi: int = 0
    gen: int = 0

    def __post_init__(self) -> None:
        if self.trie.depth != self.step:
            raise ValueError(
                f"work item invariant violated: trie depth {self.trie.depth}"
                f" != step {self.step}"
            )

    @property
    def key(self) -> StrideKey:
        return (self.origin, self.lo, self.hi)

    @property
    def tracked(self) -> bool:
        return self.origin >= 0


@dataclass
class RankWorker:
    """One simulated compute node of the distributed run.

    ``steal_fraction`` controls how much pending work a busy rank ships
    to a free one (paper: "a portion of its work"; default half).
    ``steal_order`` picks which end of the stack is shipped: ``"shallow"``
    (big subtrees, the default — they amortise the transfer) or
    ``"deep"`` (small, nearly-finished chunks; kept for the ablation).
    ``slowdown`` is a straggler factor (>= 1) applied to every compute
    advance; ``ledger`` wires the worker into the runtime's per-interval
    accounting (``None`` keeps the seed's untracked behaviour).
    """

    rank: int
    data: CSRGraph
    query: CSRGraph
    config: CuTSConfig
    steal_fraction: float = 0.5
    steal_order: str = "shallow"
    clock_ms: float = 0.0
    busy_ms: float = 0.0
    count: int = 0
    chunks_processed: int = 0
    chunks_received: int = 0
    chunks_sent: int = 0
    stack: list[WorkItem] = field(default_factory=list)
    slowdown: float = 1.0
    ledger: StrideLedger | None = None

    def __post_init__(self) -> None:
        if not 0.0 < self.steal_fraction < 1.0:
            raise ValueError("steal_fraction must be in (0, 1)")
        if self.steal_order not in ("shallow", "deep"):
            raise ValueError("steal_order must be 'shallow' or 'deep'")
        if self.slowdown < 1.0:
            raise ValueError("slowdown must be >= 1")
        self.matcher = CuTSMatcher(self.data, self.config)
        self.state = self.matcher.make_run_state(self.query)
        self._num_steps = self.state.order.num_steps
        self._num_parts = 1

    # ------------------------------------------------------------------
    def init_partition(
        self,
        num_ranks: int,
        committed: list[tuple[int, int]] | None = None,
    ) -> None:
        """``init_match``: compute root candidates, keep the rank stride.

        ``committed`` lists ``(lo, hi)`` root-row intervals of *this*
        rank's partition already committed by a previous run (checkpoint
        resume); only the gaps between them are opened and executed.
        The resumed run's fingerprints guarantee the root set is
        identical, so gap rows map onto exactly the unexplored subtrees.
        """
        self._num_parts = num_ranks
        t0 = self.state.cost.time_ms
        trie = self.matcher.initial_frontier(
            self.state, part=self.rank, num_parts=num_ranks
        )
        self._advance(t0)
        roots = trie.num_paths(0)
        if roots == 0:
            return
        gaps = _interval_gaps(roots, committed)
        for lo, hi in gaps:
            key = (self.rank, lo, hi)
            if self.ledger is not None:
                self.ledger.open(key, self.rank)
            if self._num_steps == 1:
                self.count += hi - lo
                if self.ledger is not None:
                    self.ledger.finish_item(key, 0, self.rank, hi - lo)
                continue
            self.stack.append(
                WorkItem(
                    trie=trie,
                    step=1,
                    frontier=np.arange(lo, hi, dtype=np.int64),
                    origin=self.rank,
                    lo=lo,
                    hi=hi,
                )
            )

    def has_work(self) -> bool:
        return bool(self.stack)

    # ------------------------------------------------------------------
    def _split_item(self, item: WorkItem, at: int) -> tuple[WorkItem, WorkItem]:
        """Split ``item``'s frontier at position ``at`` into (head, tail),
        keeping the per-interval ledger accounting exact."""
        if item.step == 1 and item.tracked:
            # Root-level split: positions map 1:1 onto root rows, so the
            # interval subdivides at lo + at.
            mid = item.lo + at
            if self.ledger is not None:
                self.ledger.split_root(item.key, mid, item.gen, self.rank)
            head = WorkItem(
                trie=item.trie, step=item.step, frontier=item.frontier[:at],
                origin=item.origin, lo=item.lo, hi=mid, gen=item.gen,
            )
            tail = WorkItem(
                trie=item.trie, step=item.step, frontier=item.frontier[at:],
                origin=item.origin, lo=mid, hi=item.hi, gen=item.gen,
            )
        else:
            # Deeper split: both halves stay in the same interval; one
            # logical item became two.
            if self.ledger is not None and item.tracked:
                self.ledger.add_pending(item.key, item.gen, 1)
            head = WorkItem(
                trie=item.trie, step=item.step, frontier=item.frontier[:at],
                origin=item.origin, lo=item.lo, hi=item.hi, gen=item.gen,
            )
            tail = WorkItem(
                trie=item.trie, step=item.step, frontier=item.frontier[at:],
                origin=item.origin, lo=item.lo, hi=item.hi, gen=item.gen,
            )
        return head, tail

    def _finish(self, item: WorkItem, count: int) -> None:
        if self.ledger is not None and item.tracked:
            self.ledger.finish_item(item.key, item.gen, self.rank, count)

    def process_one_chunk(self) -> None:
        """Pop one chunk (≤ chunk_size paths), expand it one level."""
        if not self.stack:
            raise RuntimeError(f"rank {self.rank} has no work")
        item = self.stack.pop()
        chunk_size = self.config.chunk_size
        if item.frontier.size > chunk_size:
            # Take the first chunk, push the remainder back (deep end).
            item, rest = self._split_item(item, chunk_size)
            self.stack.append(rest)
        t0 = self.state.cost.time_ms
        pa, ca = self.matcher.expand_frontier(
            item.trie, item.step, item.frontier, self.state
        )
        self._advance(t0)
        self.chunks_processed += 1
        if len(ca) == 0:
            self._finish(item, 0)
            return
        if item.step + 1 == self._num_steps:
            self.count += len(ca)
            self._finish(item, len(ca))
            return
        child = PathTrie(
            levels=[*item.trie.levels, TrieLevel(pa=pa, ca=ca)]
        )
        self.stack.append(
            WorkItem(
                trie=child,
                step=item.step + 1,
                frontier=np.arange(len(ca), dtype=np.int64),
                origin=item.origin,
                lo=item.lo,
                hi=item.hi,
                gen=item.gen,
            )
        )

    def _advance(self, t0: float) -> None:
        dt = (self.state.cost.time_ms - t0) * self.slowdown
        self.clock_ms += dt
        self.busy_ms += dt

    # ------------------------------------------------------------------
    # Work shipping
    # ------------------------------------------------------------------
    def has_surplus(self) -> bool:
        """Whether this rank can spare work for a free node."""
        return len(self.stack) > 1 or (
            len(self.stack) == 1
            and self.stack[0].frontier.size > self.config.chunk_size
        )

    def _pop_surplus_items(self) -> list[WorkItem]:
        """Extract ~``steal_fraction`` of pending work as work items."""
        if not self.stack:
            return []
        if len(self.stack) == 1:
            # Split the lone item's frontier.
            item = self.stack.pop()
            give_n = max(1, int(item.frontier.size * self.steal_fraction))
            give_n = min(give_n, item.frontier.size - 1)
            give, keep = self._split_item(item, give_n)
            self.stack.append(keep)
            return [give]
        num_give = max(1, int(len(self.stack) * self.steal_fraction))
        num_give = min(num_give, len(self.stack) - 1)
        if self.steal_order == "shallow":
            outgoing = self.stack[:num_give]  # big subtrees
            self.stack = self.stack[num_give:]
        else:
            outgoing = self.stack[-num_give:]  # nearly-done chunks
            self.stack = self.stack[:-num_give]
        return outgoing

    def pop_surplus_with_meta(
        self,
    ) -> tuple[list[np.ndarray], list[BufferMeta]]:
        """Serialise surplus work, returning buffers plus provenance."""
        outgoing = self._pop_surplus_items()
        buffers: list[np.ndarray] = []
        metas: list[BufferMeta] = []
        for item in outgoing:
            sub = item.trie.extract_subtrie(item.trie.depth - 1, item.frontier)
            buffers.append(serialize_trie(sub))
            metas.append(
                BufferMeta(origin=item.origin, lo=item.lo, hi=item.hi,
                           gen=item.gen)
            )
        self.chunks_sent += len(buffers)
        return buffers, metas

    def pop_surplus(self) -> list[np.ndarray]:
        """Extract ~``steal_fraction`` of pending work as serialised trie
        buffers.

        Returns flat int64 buffers; the matching steps are implicit
        (``trie.depth`` of each buffer).
        """
        return self.pop_surplus_with_meta()[0]

    def receive_work(self, buffers: list[np.ndarray]) -> None:
        """Integrate shipped tries: "adjust depth and other parameters and
        begin processing of received work" (Algorithm 3)."""
        for buf in buffers:
            self._integrate_buffer(buf, None, count_received=True)

    def integrate_envelope(self, envelope: WorkEnvelope) -> int:
        """Integrate a reliable work envelope; returns items added.

        Buffers whose interval generation is stale (the interval was
        re-executed after a crash) are discarded — their logical work
        already restarted from the root elsewhere.
        """
        added = 0
        for buf, meta in zip(envelope.buffers, envelope.metas):
            added += self._integrate_buffer(buf, meta, count_received=True)
        return added

    def requeue_buffers(
        self, buffers: tuple[np.ndarray, ...], metas: tuple[BufferMeta, ...]
    ) -> int:
        """Take back work from an abandoned shipment (retry budget spent
        or destination dead); the sender still owns the ledger copy."""
        added = 0
        for buf, meta in zip(buffers, metas):
            added += self._integrate_buffer(buf, meta, count_received=False)
        return added

    def _integrate_buffer(
        self, buf: np.ndarray, meta: BufferMeta | None, *, count_received: bool
    ) -> int:
        if meta is not None and self.ledger is not None:
            if meta.origin >= 0 and not self.ledger.accepts(meta.key, meta.gen):
                self.ledger.stale_discards += 1
                return 0
        trie = deserialize_trie(buf)
        step = trie.depth
        frontier = np.arange(trie.num_paths(trie.depth - 1), dtype=np.int64)
        origin, lo, hi, gen = (-1, 0, 0, 0)
        if meta is not None:
            origin, lo, hi, gen = meta.origin, meta.lo, meta.hi, meta.gen
        key = (origin, lo, hi)
        tracked = origin >= 0 and self.ledger is not None
        if frontier.size == 0:
            if tracked:
                self.ledger.finish_item(key, gen, self.rank, 0)
            return 0
        if step >= self._num_steps:
            # Shipped completed embeddings (shouldn't happen; guard).
            self.count += frontier.size
            if tracked:
                self.ledger.finish_item(key, gen, self.rank, frontier.size)
            return 0
        self.stack.append(
            WorkItem(trie=trie, step=step, frontier=frontier,
                     origin=origin, lo=lo, hi=hi, gen=gen)
        )
        if tracked:
            self.ledger.add_holder(key, gen, self.rank)
        if count_received:
            self.chunks_received += 1
        return 1

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def purge_intervals(self, dirty: set[StrideKey]) -> int:
        """Drop stack items descending from invalidated intervals."""
        before = len(self.stack)
        self.stack = [it for it in self.stack if it.key not in dirty]
        return before - len(self.stack)

    def adopt_root_intervals(self, keys: list[StrideKey]) -> None:
        """Re-execute invalidated root intervals on this (surviving) rank.

        Recomputes the origin partition's root frontier (charged to this
        rank's clock — recovery is not free) and pushes one fresh root
        item per interval at the ledger's bumped generation.
        """
        if self.ledger is None:
            raise RuntimeError("adopt_root_intervals requires a ledger")
        by_origin: dict[int, list[StrideKey]] = {}
        for key in keys:
            by_origin.setdefault(key[0], []).append(key)
        for origin, group in sorted(by_origin.items()):
            t0 = self.state.cost.time_ms
            trie = self.matcher.initial_frontier(
                self.state, part=origin, num_parts=self._num_parts
            )
            self._advance(t0)
            for key in sorted(group):
                _, lo, hi = key
                gen = self.ledger.adopt(key, self.rank)
                if self._num_steps == 1:
                    self.count += hi - lo
                    self.ledger.finish_item(key, gen, self.rank, hi - lo)
                    continue
                self.stack.append(
                    WorkItem(
                        trie=trie,
                        step=1,
                        frontier=np.arange(lo, hi, dtype=np.int64),
                        origin=origin,
                        lo=lo,
                        hi=hi,
                        gen=gen,
                    )
                )
