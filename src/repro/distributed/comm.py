"""Simulated MPI communication substrate.

A minimal discrete-event message layer standing in for OpenMPI: ranks
exchange tagged messages whose delivery time is ``send_time + latency +
words / bandwidth``.  The distributed scheduler (Algorithm 3) runs
unmodified on top; the network model's parameters default to an
InfiniBand-class interconnect.

Messages carry an arbitrary payload (we ship serialised tries as flat
int64 buffers, mirroring an ``MPI.Send`` of one contiguous array) plus an
explicit ``words`` size used for the transfer-time model.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

from .faults import FaultInjector

__all__ = ["NetworkModel", "Message", "SimComm"]


@dataclass(frozen=True)
class NetworkModel:
    """Point-to-point network cost model.

    Defaults approximate EDR InfiniBand: ~20 µs effective latency
    (including the MPI stack) and ~12.5 GB/s ⇒ ~3.1e6 words/ms.
    """

    latency_ms: float = 0.02
    words_per_ms: float = 3.1e6

    def transfer_ms(self, words: int) -> float:
        """Modeled time to move ``words`` 4-byte words."""
        if words < 0:
            raise ValueError("words must be non-negative")
        return self.latency_ms + words / self.words_per_ms


@dataclass(frozen=True)
class Message:
    """One in-flight message."""

    seq: int
    src: int
    dst: int
    tag: str
    payload: Any
    words: int
    send_time: float
    arrival_time: float


@dataclass
class SimComm:
    """Per-cluster message exchange with simulated delivery times.

    An optional :class:`~repro.distributed.faults.FaultInjector` is
    consulted on every send: it may drop, duplicate, or delay the
    delivery.  ``messages_sent``/``words_sent`` count what the sender
    injected (a dropped message was still paid for on the wire).
    """

    num_ranks: int
    network: NetworkModel = field(default_factory=NetworkModel)
    injector: FaultInjector | None = None

    def __post_init__(self) -> None:
        if self.num_ranks <= 0:
            raise ValueError("num_ranks must be positive")
        self._inboxes: list[list[Message]] = [[] for _ in range(self.num_ranks)]
        self._seq = itertools.count()
        self.messages_sent = 0
        self.words_sent = 0

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.num_ranks:
            raise ValueError(f"rank {rank} out of range [0, {self.num_ranks})")

    def send(
        self,
        src: int,
        dst: int,
        tag: str,
        payload: Any,
        words: int,
        time: float,
    ) -> float:
        """Post a message; returns its arrival time at ``dst``."""
        self._check_rank(src)
        self._check_rank(dst)
        if src == dst:
            raise ValueError("self-sends are not modeled")
        arrival = time + self.network.transfer_ms(words)
        if self.injector is None:
            extra_delays = [0.0]
        else:
            extra_delays = self.injector.message_fate(tag)
        for extra in extra_delays:
            msg = Message(
                seq=next(self._seq),
                src=src,
                dst=dst,
                tag=tag,
                payload=payload,
                words=words,
                send_time=time,
                arrival_time=arrival + extra,
            )
            self._inboxes[dst].append(msg)
        self.messages_sent += 1
        self.words_sent += words
        return arrival

    def broadcast(
        self, src: int, tag: str, payload: Any, words: int, time: float
    ) -> float:
        """Send to every other rank; returns the latest arrival time."""
        self._check_rank(src)
        latest = time
        for dst in range(self.num_ranks):
            if dst != src:
                latest = max(
                    latest, self.send(src, dst, tag, payload, words, time)
                )
        return latest

    def receive(
        self, dst: int, time: float, tag: str | None = None
    ) -> list[Message]:
        """Drain messages that have arrived at ``dst`` by ``time``.

        Messages are returned in arrival order; an optional tag filter
        leaves non-matching messages queued.
        """
        self._check_rank(dst)
        ready: list[Message] = []
        kept: list[Message] = []
        for m in self._inboxes[dst]:
            if m.arrival_time <= time and (tag is None or m.tag == tag):
                ready.append(m)
            else:
                kept.append(m)
        self._inboxes[dst] = kept
        ready.sort(key=lambda m: (m.arrival_time, m.seq))
        return ready

    def peek(self, dst: int, tag: str | None = None) -> list[Message]:
        """All queued messages for ``dst`` (any arrival time), unremoved."""
        self._check_rank(dst)
        return [
            m for m in self._inboxes[dst] if tag is None or m.tag == tag
        ]
