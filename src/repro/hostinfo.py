"""Host CPU topology as this *process* actually sees it.

``os.cpu_count()`` reports the machine's logical CPUs, which
over-counts inside cgroup/affinity-restricted containers — exactly the
environments CI benchmarks run in.  A speedup gate keyed on the logical
count silently mis-fires there: it either demands parallel speedup the
scheduler cannot deliver or skips on hosts that could deliver it.

Every benchmark that reports host capacity goes through
:func:`detect_cpus` and records **all three** counts — usable, logical,
affinity — so a reader of a ``BENCH_*.json`` report can tell not just
how many CPUs the gate assumed but *why* (Python's own
``process_cpu_count`` on 3.13+, the scheduler-affinity mask on Linux,
or the raw logical count as the last resort).
"""

from __future__ import annotations

import os

__all__ = ["cpu_report", "detect_cpus"]


def detect_cpus() -> tuple[int, int | None, int | None]:
    """CPUs usable by this process: ``(usable, logical, affinity)``.

    ``usable`` is ``os.process_cpu_count()`` where available (Python
    3.13+), else the scheduler-affinity size, else the logical count
    (minimum 1).  ``logical`` and ``affinity`` are reported as-is
    (``None`` when the platform cannot say).
    """
    logical = os.cpu_count()
    affinity: int | None = None
    getaff = getattr(os, "sched_getaffinity", None)
    if getaff is not None:  # Linux/some BSDs only
        try:
            affinity = len(getaff(0))
        except OSError:
            affinity = None
    process_cpus = getattr(os, "process_cpu_count", None)
    usable = process_cpus() if process_cpus is not None else None
    if not usable:
        usable = affinity or logical or 1
    return usable, logical, affinity


def cpu_report() -> dict[str, int | None]:
    """The three counts as the dict benchmark reports embed:
    ``cpu_count`` stays the *usable* figure (what gates key on), with
    the raw ``cpu_logical`` / ``cpu_affinity`` beside it."""
    usable, logical, affinity = detect_cpus()
    return {
        "cpu_count": usable,
        "cpu_logical": logical,
        "cpu_affinity": affinity,
    }
