"""``python -m repro.serve`` — run the matching service over HTTP.

Thin shell over :func:`repro.service.http.main`; see that module for
the endpoint reference and :mod:`repro.service` for the architecture.
"""

from __future__ import annotations

import sys

from .service.http import main

if __name__ == "__main__":
    sys.exit(main())
