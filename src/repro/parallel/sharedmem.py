"""Zero-copy shared-memory residence for the data-graph CSR arrays.

The multi-core engine shards one search across worker **processes**; the
data graph is the one payload too big to ship per task.  cuTS keeps the
graph resident in every GPU's device memory for the lifetime of the run
(§4.2) — the CPU analogue is a single POSIX shared-memory segment holding
the five CSR arrays (``indptr``/``indices``/``rindptr``/``rindices`` and
optional ``labels``), created once by the parent and **attached** by each
worker.  Attaching maps the same physical pages: no pickling, no copies,
O(1) per worker regardless of graph size.

:class:`SharedCSR.create` copies a :class:`~repro.graph.csr.CSRGraph`
into a fresh segment (the only copy that ever happens); the pickled
:class:`SharedCSRMeta` handle is all a worker needs to rebuild the graph
as NumPy views over the mapping via :class:`SharedCSR.attach`.

Lifetime rules (enforced here, tested in ``tests/test_parallel_shared``):

* the **creating** process owns the segment and unlinks it on
  :meth:`SharedCSR.close` — a ``weakref.finalize`` guard unlinks it even
  if the owner forgets, so no segment outlives the parent interpreter;
* **attaching** processes never unlink, and are deliberately hidden from
  Python's ``resource_tracker`` (a worker that dies — even ``SIGKILL`` —
  must not tear the segment down under its siblings, nor spew "leaked
  shared_memory" warnings for a segment the owner is responsible for).
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from ..graph.csr import CSRGraph

__all__ = ["SharedCSR", "SharedCSRMeta"]

_WORD = np.dtype(np.int64)


@dataclass(frozen=True)
class SharedCSRMeta:
    """The picklable handle a worker needs to attach a :class:`SharedCSR`.

    ``lengths`` is the word count of each array in segment order:
    ``(indptr, indices, rindptr, rindices, labels)``; a labels length of
    ``-1`` marks an unlabeled graph (distinct from a labeled graph on an
    empty vertex set).
    """

    segment: str
    num_vertices: int
    graph_name: str
    lengths: tuple[int, int, int, int, int]

    @property
    def total_words(self) -> int:
        return sum(n for n in self.lengths if n > 0)


def _release(shm: shared_memory.SharedMemory, owner: bool) -> None:
    """Unmap (and, for the owner, unlink) a segment; idempotent-safe."""
    try:
        shm.close()
    except BufferError:
        # A caller still holds NumPy views into the mapping; the mapping
        # itself dies with the process, and the owner can (and must)
        # still unlink the name so nothing persists in /dev/shm.
        pass
    if owner:
        # With a fork-started pool the workers share this process's
        # resource tracker, and their attach-side unregister (see
        # :meth:`SharedCSR.attach`) may have dropped our registration;
        # re-register (idempotent — the tracker cache is a set) so the
        # unregister inside ``unlink`` always finds the name.
        try:
            resource_tracker.register(shm._name, "shared_memory")
        except Exception:  # pragma: no cover - tracker internals
            pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


class SharedCSR:
    """A :class:`CSRGraph` whose arrays live in one shared-memory segment.

    Use :meth:`create` in the parent, ship :attr:`meta` to workers, and
    :meth:`attach` there; ``.graph`` on either side is a normal
    :class:`CSRGraph` whose arrays are views over the shared mapping.
    """

    def __init__(
        self,
        shm: shared_memory.SharedMemory,
        meta: SharedCSRMeta,
        graph: CSRGraph,
        *,
        owner: bool,
    ) -> None:
        self._shm = shm
        self.meta = meta
        self._graph: CSRGraph | None = graph
        self.owner = owner
        self._finalizer = weakref.finalize(self, _release, shm, owner)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def create(cls, graph: CSRGraph) -> "SharedCSR":
        """Copy ``graph`` into a fresh segment (the parent-side copy)."""
        arrays = [graph.indptr, graph.indices, graph.rindptr, graph.rindices]
        lengths = [len(a) for a in arrays]
        if graph.labels is not None:
            arrays.append(graph.labels)
            lengths.append(len(graph.labels))
        else:
            lengths.append(-1)
        total = sum(len(a) for a in arrays)
        shm = shared_memory.SharedMemory(
            create=True, size=max(1, total) * _WORD.itemsize
        )
        meta = SharedCSRMeta(
            segment=shm.name,
            num_vertices=graph.num_vertices,
            graph_name=graph.name,
            lengths=tuple(lengths),
        )
        views = _carve(shm, meta)
        for view, src in zip(views, arrays):
            view[:] = src
        return cls(shm, meta, _as_graph(views, meta), owner=True)

    @classmethod
    def attach(cls, meta: SharedCSRMeta) -> "SharedCSR":
        """Map an existing segment (worker side; zero-copy)."""
        try:
            # Python >= 3.13: opt out of resource tracking directly.
            shm = shared_memory.SharedMemory(name=meta.segment, track=False)
        except TypeError:
            shm = shared_memory.SharedMemory(name=meta.segment)
            # Older interpreters register every attach with the resource
            # tracker, which would warn (or even unlink) when this worker
            # exits; the owner is responsible for the segment, not us.
            try:
                resource_tracker.unregister(shm._name, "shared_memory")
            except Exception:  # pragma: no cover - tracker internals
                pass
        views = _carve(shm, meta)
        return cls(shm, meta, _as_graph(views, meta), owner=False)

    # ------------------------------------------------------------------
    # Access / lifetime
    # ------------------------------------------------------------------
    @property
    def graph(self) -> CSRGraph:
        if self._graph is None:
            raise ValueError("SharedCSR is closed")
        return self._graph

    @property
    def closed(self) -> bool:
        return self._graph is None

    def close(self) -> None:
        """Drop this process's mapping; the owner also unlinks the name.

        Any :class:`CSRGraph` previously obtained from :attr:`graph`
        must not be used afterwards.
        """
        self._graph = None
        self._finalizer()

    def __enter__(self) -> "SharedCSR":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self.closed else "open"
        role = "owner" if self.owner else "attached"
        return (
            f"SharedCSR({self.meta.graph_name!r}, segment="
            f"{self.meta.segment!r}, {role}, {state})"
        )


def _carve(
    shm: shared_memory.SharedMemory, meta: SharedCSRMeta
) -> list[np.ndarray]:
    """Slice the segment into per-array int64 views (no copies)."""
    views = []
    offset = 0
    for n in meta.lengths:
        if n < 0:
            continue
        views.append(
            np.ndarray(n, dtype=_WORD, buffer=shm.buf, offset=offset)
        )
        offset += n * _WORD.itemsize
    return views


def _as_graph(views: list[np.ndarray], meta: SharedCSRMeta) -> CSRGraph:
    labels = views[4] if meta.lengths[4] >= 0 else None
    return CSRGraph(
        num_vertices=meta.num_vertices,
        indptr=views[0],
        indices=views[1],
        rindptr=views[2],
        rindices=views[3],
        name=meta.graph_name,
        labels=labels,
    )
