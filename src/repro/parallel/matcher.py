"""Process-parallel root-interval sharding: Algorithm 3 on CPU cores.

cuTS scales one search across *G* GPUs by striding the level-0 candidate
set — rank ``r`` keeps candidates ``r::G`` and runs the whole search
below its slice (§4.2).  This module runs the same decomposition across
worker **processes** on one host: each interval is an independent
:meth:`CuTSMatcher.match(part=..., num_parts=...)
<repro.core.matcher.CuTSMatcher.match>` call, so parallelism never
touches the algorithm's semantics — interval results reduce exactly via
:meth:`MatchResult.merge <repro.core.result.MatchResult.merge>` (counts
sum, materialised rows concatenate under ``max_materialized``, modeled
``time_ms`` takes the max across shards as concurrent devices would).

Two mechanisms make this fast rather than merely correct:

* the data graph lives in a :class:`~repro.parallel.sharedmem.SharedCSR`
  segment that workers attach **zero-copy** — per-task payload is just
  the (tiny) query plus two integers;
* the root set is **over-split** into ``oversplit x workers`` strided
  intervals served from one persistent :class:`ProcessPoolExecutor`
  queue, so a worker that drew cheap intervals steals the slack of one
  that drew expensive ones — the load-balance margin the paper gets from
  strided placement, applied at interval granularity.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Sequence

from ..checkpoint.store import FORMAT_VERSION, CheckpointStore
from ..fingerprint import check_fingerprints, config_fingerprint
from ..fingerprint import graph_fingerprint as _graph_fp
from ..core.candidates import root_candidates
from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher
from ..core.ordering import build_order
from ..core.result import MatchResult
from ..core.stats import SearchStats
from ..gpusim.cost import CostModel
from ..graph.csr import CSRGraph
from .sharedmem import SharedCSR, SharedCSRMeta

__all__ = ["ParallelMatcher", "ShardLeaseError", "parallel_match", "resolve_workers"]


class ShardLeaseError(RuntimeError):
    """A root-interval shard exhausted its re-lease budget."""


def resolve_workers(workers: int | str | None) -> int:
    """Normalise a worker request: ``"auto"``/``0`` → ``os.cpu_count()``."""
    if workers in (None, "auto", 0):
        return os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1 (or 'auto')")
    return workers


# ----------------------------------------------------------------------
# Worker-process side.  One attach + one matcher per process lifetime;
# tasks only carry (query, interval) — the zero-copy contract.
# ----------------------------------------------------------------------
_WORKER: dict = {}


def _worker_init(meta: SharedCSRMeta, config: CuTSConfig) -> None:
    shared = SharedCSR.attach(meta)
    _WORKER["shared"] = shared
    _WORKER["matcher"] = CuTSMatcher(shared.graph, config)


def _worker_pid() -> int:
    """Warm-up no-op task (see :meth:`ParallelMatcher.worker_pids`)."""
    return os.getpid()


def _run_interval(
    query: CSRGraph,
    part: int,
    num_parts: int,
    materialize: bool,
    time_limit_ms: float | None,
    heartbeat_path: str | None = None,
    test_delay_s: float = 0.0,
) -> MatchResult:
    """One shard lease: match the strided interval ``part::num_parts``.

    ``heartbeat_path`` is the watchdog's liveness file: touched at lease
    start and (throttled) once per fused expansion, so a SIGKILLed or
    hung worker goes silent and the parent re-leases the shard.
    ``test_delay_s`` is a fault-injection knob for the watchdog tests
    (simulates a hung worker by stalling before the search starts).
    """
    matcher: CuTSMatcher = _WORKER["matcher"]
    if heartbeat_path is not None:
        _touch(heartbeat_path)
        last = time.monotonic()

        def beat(_state: object) -> None:
            nonlocal last
            now = time.monotonic()
            if now - last >= _HEARTBEAT_MIN_INTERVAL_S:
                _touch(heartbeat_path)
                last = now

        matcher.on_tick = beat
    if test_delay_s > 0.0:
        time.sleep(test_delay_s)
    try:
        result = matcher.match(
            query,
            materialize=materialize,
            time_limit_ms=time_limit_ms,
            part=part,
            num_parts=num_parts,
        )
    finally:
        matcher.on_tick = None
    result.shards = (part,)
    return result


_HEARTBEAT_MIN_INTERVAL_S = 0.05


def _touch(path: str) -> None:
    """Create/refresh a heartbeat file's mtime."""
    with open(path, "a"):
        pass
    os.utime(path)


class ParallelMatcher:
    """Multi-core cuTS engine bound to one data graph.

    Mirrors :class:`~repro.core.matcher.CuTSMatcher`'s public surface
    (:meth:`match` / :meth:`count`) but fans each query out over a
    persistent pool of worker processes.  The shared-memory segment and
    the pool live until :meth:`close` (or context-manager exit); reusing
    one instance across queries amortises both.

    Parameters
    ----------
    data:
        The data graph; copied **once** into shared memory.
    config:
        Engine tunables, shipped to every worker at pool start.
        ``config.workers`` / ``config.oversplit`` supply the defaults
        for the two keyword overrides.
    workers:
        Worker processes (``None`` → ``config.workers``).
    oversplit:
        Intervals submitted per worker (``None`` → ``config.oversplit``).
    mp_context:
        ``multiprocessing`` start method.  Defaults to ``fork`` where
        available (cheapest start; the segment is attached either way)
        and the platform default elsewhere.
    """

    def __init__(
        self,
        data: CSRGraph,
        config: CuTSConfig | None = None,
        *,
        workers: int | None = None,
        oversplit: int | None = None,
        mp_context: str | None = None,
    ) -> None:
        self.data = data
        self.config = config or CuTSConfig()
        self.workers = resolve_workers(
            workers if workers is not None else self.config.workers
        )
        self.oversplit = (
            oversplit if oversplit is not None else self.config.oversplit
        )
        if self.oversplit < 1:
            raise ValueError("oversplit must be >= 1")
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else None
        self._mp_context = mp_context
        self._shared: SharedCSR | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False
        # Fault injection for the watchdog tests: part id -> seconds the
        # first lease of that shard stalls before searching (simulating
        # a hung worker).  Consumed on lease; never set in production.
        self._test_part_delays: dict[int, float] = {}

    # ------------------------------------------------------------------
    # Pool / segment lifetime
    # ------------------------------------------------------------------
    def _ensure_segment(self) -> SharedCSR:
        if self._closed:
            raise ValueError("ParallelMatcher is closed")
        if self._shared is None:
            self._shared = SharedCSR.create(self.data)
        return self._shared

    def _make_pool(self) -> ProcessPoolExecutor:
        shared = self._ensure_segment()
        ctx = (
            multiprocessing.get_context(self._mp_context)
            if self._mp_context
            else None
        )
        return ProcessPoolExecutor(
            max_workers=self.workers,
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(shared.meta, self.config),
        )

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise ValueError("ParallelMatcher is closed")
        if self._pool is None:
            self._pool = self._make_pool()
        elif getattr(self._pool, "_broken", False):
            # A worker died between matches (the executor poisons itself
            # permanently); replace it before leasing new shards.
            self._pool = self._rebuild_pool()
        return self._pool

    def _rebuild_pool(self) -> ProcessPoolExecutor:
        """Replace a broken executor.  The shared-memory segment is
        owned by this (parent) process and survives worker deaths, so a
        rebuild costs only process start-up, not a graph copy."""
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = self._make_pool()
        return self._pool

    def worker_pids(self) -> list[int]:
        """PIDs of the live pool workers (spinning the pool up if
        needed).  Exists for fault injection: the service chaos harness
        SIGKILLs one of these mid-batch and asserts the lease/rebuild
        machinery still produces exact counts."""
        pool = self._ensure_pool()
        procs = getattr(pool, "_processes", None) or {}
        if not procs:
            # The executor spawns workers lazily on first submit; force
            # at least one up so there is a pid to report.
            pool.submit(_worker_pid).result()
            procs = getattr(pool, "_processes", None) or {}
        return [p.pid for p in procs.values() if p.is_alive() and p.pid]

    def close(self) -> None:
        """Shut the pool down and unlink the shared-memory segment."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._shared is not None:
            self._shared.close()
            self._shared = None

    def __enter__(self) -> "ParallelMatcher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def num_intervals(self, query: CSRGraph) -> int:
        """Interval count for this query: ``oversplit * workers``, never
        more than there are root candidates (an empty stride is a no-op
        task), never fewer than one."""
        q0 = build_order(query, self.config.ordering).sequence[0]
        num_roots = len(
            root_candidates(
                self.data, query, q0,
                neighborhood_filter=self.config.neighborhood_filter,
            )
        )
        return max(1, min(num_roots, self.oversplit * self.workers))

    def _fingerprints(self, query: CSRGraph, num_parts: int) -> dict[str, str]:
        return {
            "version": str(FORMAT_VERSION),
            "mode": "parallel",
            "config": config_fingerprint(self.config),
            "data": _graph_fp(self.data),
            "query": _graph_fp(query),
            "num_parts": str(num_parts),
        }

    def match(
        self,
        query: CSRGraph,
        *,
        materialize: bool = False,
        time_limit_ms: float | None = None,
        checkpoint_dir: str | None = None,
        resume: bool = False,
    ) -> MatchResult:
        """Exact equivalent of :meth:`CuTSMatcher.match`, sharded.

        The merged result's ``count`` and (as a set of rows) ``matches``
        are identical to the serial engine's; ``stats.paths_per_depth``
        sums to the serial totals; ``time_ms`` models the makespan of
        concurrent devices (max over shards).

        Every run is supervised by a **watchdog**: each shard is a lease
        stamped by a heartbeat file the worker touches per expansion.  A
        SIGKILLed worker breaks the pool — the pool is rebuilt and every
        incomplete shard re-leased; a *hung* worker (heartbeat silent
        past ``config.lease_timeout_s``) gets its shard duplicated onto
        a live worker, with the first completion winning (shards merge
        exactly once — see :attr:`MatchResult.shards`).  Each shard is
        re-leased at most ``config.lease_retries`` times before
        :class:`ShardLeaseError` is raised.

        With ``checkpoint_dir``, completed shards are persisted
        atomically as they land, and ``resume=True`` re-runs only the
        missing shards (count-only; fingerprints must match).
        """
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        if checkpoint_dir is not None and materialize:
            raise ValueError(
                "checkpointed runs are count-only; materialize=True is "
                "not supported with checkpoint_dir"
            )
        if resume and checkpoint_dir is None:
            raise ValueError("resume=True requires checkpoint_dir")

        num_parts = self.num_intervals(query)
        store: CheckpointStore | None = None
        completed: dict[int, MatchResult] = {}
        if checkpoint_dir is not None:
            store = CheckpointStore(checkpoint_dir)
            manifest = store.read_manifest()
            if manifest is not None:
                if not resume:
                    raise ValueError(
                        f"checkpoint directory {store.directory!r} already "
                        "holds a job; pass resume=True to continue it"
                    )
                # The stored shard count wins: resuming with a different
                # worker count must not change the partitioning.
                num_parts = int(manifest.get("num_parts", num_parts))
                check_fingerprints(
                    dict(manifest.get("fingerprints", {})),
                    self._fingerprints(query, num_parts),
                )
                if manifest.get("complete"):
                    num_parts = int(manifest["num_parts"])
                for part, payload in store.load_parts().items():
                    if 0 <= part < num_parts:
                        completed[part] = _result_from_payload(
                            payload, self.config, part
                        )
            else:
                if resume:
                    raise ValueError(
                        f"nothing to resume: {store.directory!r} has no "
                        "manifest"
                    )
                store.write_manifest(
                    {
                        "version": FORMAT_VERSION,
                        "fingerprints": self._fingerprints(query, num_parts),
                        "num_parts": num_parts,
                        "complete": False,
                    }
                )

        hb_tmp: tempfile.TemporaryDirectory[str] | None = None
        if store is not None:
            hb_dir = store.heartbeat_dir
        else:
            hb_tmp = tempfile.TemporaryDirectory(prefix="cuts-hb-")
            hb_dir = hb_tmp.name
        keyed = {(0, part): res for part, res in completed.items()}
        try:
            self._supervise_jobs(
                [(query, num_parts)], materialize, [time_limit_ms],
                keyed, store, hb_dir,
            )
        finally:
            if hb_tmp is not None:
                hb_tmp.cleanup()

        merged = self._merge_job(keyed, 0, num_parts)
        if store is not None:
            store.write_manifest(
                {
                    "version": FORMAT_VERSION,
                    "fingerprints": self._fingerprints(query, num_parts),
                    "num_parts": num_parts,
                    "complete": True,
                    "count": int(merged.count),
                    "time_ms": float(merged.time_ms),
                }
            )
        return merged

    def match_many(
        self,
        queries: Sequence[CSRGraph],
        *,
        materialize: bool = False,
        time_limit_ms: float | Sequence[float | None] | None = None,
        num_parts: Sequence[int | None] | None = None,
    ) -> list[MatchResult]:
        """Batch form of :meth:`match`: one supervised pool pass for a
        whole set of queries against the shared data graph.

        Every query is split into its own strided root intervals and
        **all** intervals are leased onto the one persistent pool
        together, so a query that drew cheap intervals donates its slack
        to an expensive one — the same load-balance margin :meth:`match`
        gets within a single query, extended across the batch.  Each
        query's result is merged in shard order and is bit-identical to
        what a standalone :meth:`match` call would return; results come
        back in input order.

        ``time_limit_ms`` may be a scalar (applied to every query) or a
        per-query sequence.  ``num_parts`` optionally supplies per-query
        interval counts (a plan-cache hint from the matching service);
        ``None`` entries fall back to :meth:`num_intervals`.
        """
        queries = list(queries)
        if not queries:
            return []
        for query in queries:
            if query.num_vertices == 0:
                raise ValueError("query graph must have at least one vertex")
        if isinstance(time_limit_ms, (int, float)) or time_limit_ms is None:
            limits: list[float | None] = [time_limit_ms] * len(queries)
        else:
            limits = list(time_limit_ms)
            if len(limits) != len(queries):
                raise ValueError(
                    "time_limit_ms sequence must match the query count"
                )
        hints: list[int | None] = (
            list(num_parts) if num_parts is not None else [None] * len(queries)
        )
        if len(hints) != len(queries):
            raise ValueError("num_parts sequence must match the query count")
        jobs = [
            (query, hint if hint else self.num_intervals(query))
            for query, hint in zip(queries, hints)
        ]
        completed: dict[tuple[int, int], MatchResult] = {}
        with tempfile.TemporaryDirectory(prefix="cuts-hb-") as hb_dir:
            self._supervise_jobs(
                jobs, materialize, limits, completed, None, hb_dir
            )
        return [
            self._merge_job(completed, j, parts)
            for j, (_, parts) in enumerate(jobs)
        ]

    def _merge_job(
        self,
        completed: dict[tuple[int, int], MatchResult],
        job: int,
        num_parts: int,
    ) -> MatchResult:
        """Reduce one job's shards in shard order: deterministic row
        order regardless of which worker finished first."""
        cap = self.config.max_materialized
        merged: MatchResult | None = None
        for part in range(num_parts):
            result = completed[(job, part)]
            merged = (
                result
                if merged is None
                else merged.merge(result, max_materialized=cap)
            )
        assert merged is not None
        return merged

    def _supervise_jobs(
        self,
        jobs: list[tuple[CSRGraph, int]],
        materialize: bool,
        time_limits: list[float | None],
        completed: dict[tuple[int, int], MatchResult],
        store: CheckpointStore | None,
        hb_dir: str,
    ) -> None:
        """The watchdog loop: lease shards, heartbeat-check, re-lease.

        ``jobs`` is a list of ``(query, num_parts)``; shard keys are
        ``(job_index, part)``.  ``store`` (single-job durable runs only)
        persists completed shards under their part index.
        """
        pool = self._ensure_pool()
        timeout_s = self.config.lease_timeout_s
        poll_s = max(0.02, min(0.5, timeout_s / 4.0))
        max_leases = 1 + self.config.lease_retries
        all_keys = [
            (j, part)
            for j, (_, num_parts) in enumerate(jobs)
            for part in range(num_parts)
        ]
        leases: dict[tuple[int, int], int] = dict.fromkeys(all_keys, 0)
        lease_at: dict[tuple[int, int], float] = {}
        pending: dict[Future[MatchResult], tuple[int, int]] = {}

        def hb_path(key: tuple[int, int]) -> str:
            j, part = key
            if len(jobs) == 1:
                # Single-job naming matches CheckpointStore.heartbeat_path.
                return os.path.join(hb_dir, f"part-{part:05d}")
            return os.path.join(hb_dir, f"job{j:04d}-part-{part:05d}")

        def lease(key: tuple[int, int]) -> None:
            nonlocal pool
            j, part = key
            query, num_parts = jobs[j]
            leases[key] += 1
            if leases[key] > max_leases:
                raise ShardLeaseError(
                    f"shard {part}/{num_parts} of job {j} failed "
                    f"{max_leases} leases "
                    f"(lease_retries={self.config.lease_retries})"
                )
            delay = float(self._test_part_delays.get(part, 0.0)) if j == 0 else 0.0
            # A re-leased shard must not replay the injected hang.
            if j == 0:
                self._test_part_delays.pop(part, None)
            args = (
                query, part, num_parts, materialize, time_limits[j],
                hb_path(key), delay,
            )
            try:
                fut = pool.submit(_run_interval, *args)
            except BrokenProcessPool:
                pool = self._rebuild_pool()
                fut = pool.submit(_run_interval, *args)
            pending[fut] = key
            lease_at[key] = time.monotonic()

        def settle(key: tuple[int, int], result: MatchResult) -> None:
            if key in completed:
                return  # duplicate delivery (slow original after re-lease)
            completed[key] = result
            if store is not None and key[0] == 0:
                store.save_part(key[1], _payload_from_result(result))

        for key in all_keys:
            if key not in completed:
                lease(key)

        # Stop as soon as every shard has settled: an abandoned duplicate
        # (the hung original of a re-leased shard) must not block the
        # merge — its eventual result is dropped by the dedupe.
        while pending and len(completed) < len(all_keys):
            done, _ = wait(
                set(pending), timeout=poll_s, return_when=FIRST_COMPLETED
            )
            broken = False
            for fut in done:
                key = pending.pop(fut)
                try:
                    settle(key, fut.result())
                except BrokenProcessPool:
                    broken = True
                except Exception:
                    raise
            if broken:
                # A SIGKILLed worker poisons the whole executor: every
                # pending future fails together.  Rebuild and re-lease
                # all incomplete shards.
                pending.clear()
                pool = self._rebuild_pool()
                for key in all_keys:
                    if key not in completed:
                        lease(key)
                continue
            # Hung-worker check: a leased, incomplete shard whose
            # heartbeat (and lease) are both older than the timeout is
            # presumed stuck; duplicate it onto a live worker.
            now = time.monotonic()
            wall_now = time.time()
            for key in set(pending.values()):
                if key in completed:
                    continue
                if now - lease_at.get(key, now) <= timeout_s:
                    continue
                try:
                    silent = wall_now - os.stat(hb_path(key)).st_mtime
                except OSError:
                    silent = timeout_s + 1.0
                if silent > timeout_s:
                    lease(key)

    def count(self, query: CSRGraph, **kwargs: object) -> int:
        """Convenience: number of embeddings only."""
        return self.match(query, **kwargs).count


def _payload_from_result(result: MatchResult) -> dict[str, Any]:
    """JSON form of one completed shard (count-only durable mode)."""
    return {
        "count": int(result.count),
        "time_ms": float(result.time_ms),
        "stats": result.stats.to_json(),
        "order": [int(q) for q in result.order],
    }


def _result_from_payload(
    payload: dict[str, Any], config: CuTSConfig, part: int
) -> MatchResult:
    """Rebuild a persisted shard result (hardware counters are not
    persisted; a resumed shard contributes an empty cost model)."""
    return MatchResult(
        count=int(payload["count"]),
        matches=None,
        time_ms=float(payload["time_ms"]),
        cost=CostModel(config.device),
        stats=SearchStats.from_json(payload["stats"]),
        order=tuple(int(q) for q in payload.get("order", ())),
        shards=(part,),
    )


def parallel_match(
    data: CSRGraph,
    query: CSRGraph,
    config: CuTSConfig | None = None,
    *,
    workers: int | str | None = None,
    materialize: bool = False,
    time_limit_ms: float | None = None,
) -> MatchResult:
    """One-shot helper: build a :class:`ParallelMatcher`, match, clean up."""
    with ParallelMatcher(
        data, config, workers=resolve_workers(workers)
    ) as matcher:
        return matcher.match(
            query, materialize=materialize, time_limit_ms=time_limit_ms
        )
