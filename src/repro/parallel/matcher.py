"""Process-parallel root-interval sharding: Algorithm 3 on CPU cores.

cuTS scales one search across *G* GPUs by striding the level-0 candidate
set — rank ``r`` keeps candidates ``r::G`` and runs the whole search
below its slice (§4.2).  This module runs the same decomposition across
worker **processes** on one host: each interval is an independent
:meth:`CuTSMatcher.match(part=..., num_parts=...)
<repro.core.matcher.CuTSMatcher.match>` call, so parallelism never
touches the algorithm's semantics — interval results reduce exactly via
:meth:`MatchResult.merge <repro.core.result.MatchResult.merge>` (counts
sum, materialised rows concatenate under ``max_materialized``, modeled
``time_ms`` takes the max across shards as concurrent devices would).

Two mechanisms make this fast rather than merely correct:

* the data graph lives in a :class:`~repro.parallel.sharedmem.SharedCSR`
  segment that workers attach **zero-copy** — per-task payload is just
  the (tiny) query plus two integers;
* the root set is **over-split** into ``oversplit x workers`` strided
  intervals served from one persistent :class:`ProcessPoolExecutor`
  queue, so a worker that drew cheap intervals steals the slack of one
  that drew expensive ones — the load-balance margin the paper gets from
  strided placement, applied at interval granularity.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor

from ..core.candidates import root_candidates
from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher
from ..core.ordering import build_order
from ..core.result import MatchResult
from ..graph.csr import CSRGraph
from .sharedmem import SharedCSR, SharedCSRMeta

__all__ = ["ParallelMatcher", "parallel_match", "resolve_workers"]


def resolve_workers(workers: int | str | None) -> int:
    """Normalise a worker request: ``"auto"``/``0`` → ``os.cpu_count()``."""
    if workers in (None, "auto", 0):
        return os.cpu_count() or 1
    workers = int(workers)
    if workers < 1:
        raise ValueError("workers must be >= 1 (or 'auto')")
    return workers


# ----------------------------------------------------------------------
# Worker-process side.  One attach + one matcher per process lifetime;
# tasks only carry (query, interval) — the zero-copy contract.
# ----------------------------------------------------------------------
_WORKER: dict = {}


def _worker_init(meta: SharedCSRMeta, config: CuTSConfig) -> None:
    shared = SharedCSR.attach(meta)
    _WORKER["shared"] = shared
    _WORKER["matcher"] = CuTSMatcher(shared.graph, config)


def _run_interval(
    query: CSRGraph,
    part: int,
    num_parts: int,
    materialize: bool,
    time_limit_ms: float | None,
) -> MatchResult:
    matcher: CuTSMatcher = _WORKER["matcher"]
    return matcher.match(
        query,
        materialize=materialize,
        time_limit_ms=time_limit_ms,
        part=part,
        num_parts=num_parts,
    )


class ParallelMatcher:
    """Multi-core cuTS engine bound to one data graph.

    Mirrors :class:`~repro.core.matcher.CuTSMatcher`'s public surface
    (:meth:`match` / :meth:`count`) but fans each query out over a
    persistent pool of worker processes.  The shared-memory segment and
    the pool live until :meth:`close` (or context-manager exit); reusing
    one instance across queries amortises both.

    Parameters
    ----------
    data:
        The data graph; copied **once** into shared memory.
    config:
        Engine tunables, shipped to every worker at pool start.
        ``config.workers`` / ``config.oversplit`` supply the defaults
        for the two keyword overrides.
    workers:
        Worker processes (``None`` → ``config.workers``).
    oversplit:
        Intervals submitted per worker (``None`` → ``config.oversplit``).
    mp_context:
        ``multiprocessing`` start method.  Defaults to ``fork`` where
        available (cheapest start; the segment is attached either way)
        and the platform default elsewhere.
    """

    def __init__(
        self,
        data: CSRGraph,
        config: CuTSConfig | None = None,
        *,
        workers: int | None = None,
        oversplit: int | None = None,
        mp_context: str | None = None,
    ) -> None:
        self.data = data
        self.config = config or CuTSConfig()
        self.workers = resolve_workers(
            workers if workers is not None else self.config.workers
        )
        self.oversplit = (
            oversplit if oversplit is not None else self.config.oversplit
        )
        if self.oversplit < 1:
            raise ValueError("oversplit must be >= 1")
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else None
        self._mp_context = mp_context
        self._shared: SharedCSR | None = None
        self._pool: ProcessPoolExecutor | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Pool / segment lifetime
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._closed:
            raise ValueError("ParallelMatcher is closed")
        if self._pool is None:
            self._shared = SharedCSR.create(self.data)
            ctx = (
                multiprocessing.get_context(self._mp_context)
                if self._mp_context
                else None
            )
            self._pool = ProcessPoolExecutor(
                max_workers=self.workers,
                mp_context=ctx,
                initializer=_worker_init,
                initargs=(self._shared.meta, self.config),
            )
        return self._pool

    def close(self) -> None:
        """Shut the pool down and unlink the shared-memory segment."""
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._shared is not None:
            self._shared.close()
            self._shared = None

    def __enter__(self) -> "ParallelMatcher":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    def num_intervals(self, query: CSRGraph) -> int:
        """Interval count for this query: ``oversplit * workers``, never
        more than there are root candidates (an empty stride is a no-op
        task), never fewer than one."""
        q0 = build_order(query, self.config.ordering).sequence[0]
        num_roots = len(
            root_candidates(
                self.data, query, q0,
                neighborhood_filter=self.config.neighborhood_filter,
            )
        )
        return max(1, min(num_roots, self.oversplit * self.workers))

    def match(
        self,
        query: CSRGraph,
        *,
        materialize: bool = False,
        time_limit_ms: float | None = None,
    ) -> MatchResult:
        """Exact equivalent of :meth:`CuTSMatcher.match`, sharded.

        The merged result's ``count`` and (as a set of rows) ``matches``
        are identical to the serial engine's; ``stats.paths_per_depth``
        sums to the serial totals; ``time_ms`` models the makespan of
        concurrent devices (max over shards).
        """
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        num_parts = self.num_intervals(query)
        pool = self._ensure_pool()
        futures = [
            pool.submit(
                _run_interval, query, part, num_parts, materialize,
                time_limit_ms,
            )
            for part in range(num_parts)
        ]
        merged: MatchResult | None = None
        cap = self.config.max_materialized
        # Reduce in submission order: deterministic row order regardless
        # of which worker finishes first.
        for future in futures:
            result = future.result()
            merged = (
                result
                if merged is None
                else merged.merge(result, max_materialized=cap)
            )
        assert merged is not None
        return merged

    def count(self, query: CSRGraph, **kwargs: object) -> int:
        """Convenience: number of embeddings only."""
        return self.match(query, **kwargs).count


def parallel_match(
    data: CSRGraph,
    query: CSRGraph,
    config: CuTSConfig | None = None,
    *,
    workers: int | str | None = None,
    materialize: bool = False,
    time_limit_ms: float | None = None,
) -> MatchResult:
    """One-shot helper: build a :class:`ParallelMatcher`, match, clean up."""
    with ParallelMatcher(
        data, config, workers=resolve_workers(workers)
    ) as matcher:
        return matcher.match(
            query, materialize=materialize, time_limit_ms=time_limit_ms
        )
