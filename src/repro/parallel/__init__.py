"""Multi-core execution engine: process-parallel root-interval sharding.

The CPU analogue of the paper's multi-GPU scaling (§4.2): the level-0
candidate set is over-split into strided intervals, each interval runs
the full cuTS search in a worker process against a **zero-copy**
shared-memory copy of the data graph, and interval results merge exactly.

* :class:`SharedCSR` — the data-graph CSR arrays in one
  ``multiprocessing.shared_memory`` segment, attached by workers;
* :class:`ParallelMatcher` — persistent process pool + interval planner
  + exact result reduction;
* :func:`parallel_match` — one-shot convenience wrapper.
"""

from .matcher import ParallelMatcher, parallel_match, resolve_workers
from .sharedmem import SharedCSR, SharedCSRMeta

__all__ = [
    "ParallelMatcher",
    "parallel_match",
    "resolve_workers",
    "SharedCSR",
    "SharedCSRMeta",
]
