"""Structured diagnostics emitted by the analysis checkers."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Severity(str, enum.Enum):
    """How a diagnostic participates in gating.

    ``ERROR`` findings fail the run (exit code 1); ``WARNING`` findings
    are reported but only fail under ``--strict``.
    """

    ERROR = "error"
    WARNING = "warning"


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: a rule violated at a source location.

    ``path`` is the POSIX-style path relative to the analysis root, so
    fingerprints are stable across machines and checkouts.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str
    severity: Severity = field(default=Severity.ERROR, compare=False)

    @property
    def fingerprint(self) -> str:
        """Baseline identity: deliberately excludes the line number so
        unrelated edits above a baselined finding do not un-baseline it."""
        return f"{self.rule}::{self.path}::{self.message}"

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.severity.value} {self.rule} {self.message}"
        )

    def to_json(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "severity": self.severity.value,
            "fingerprint": self.fingerprint,
        }
