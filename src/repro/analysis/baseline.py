"""Committed-baseline support: gate CI from day one without rewriting
history.

A baseline is a JSON file listing the fingerprints of accepted
pre-existing findings.  Diagnostics whose fingerprint appears in the
baseline are reported as *baselined* (informational) instead of failing
the run; baseline entries that no longer match anything are *stale* and
fail ``--strict`` so the file shrinks monotonically as debt is paid.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from .diagnostics import Diagnostic

__all__ = ["Baseline"]

_VERSION = 1


@dataclass
class Baseline:
    """A set of accepted diagnostic fingerprints (see ``Diagnostic``)."""

    entries: set[str] = field(default_factory=set)
    comment: str = ""

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        data = json.loads(path.read_text())
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}"
            )
        return cls(
            entries=set(data.get("entries", [])),
            comment=str(data.get("comment", "")),
        )

    def save(self, path: Path) -> None:
        data = {
            "version": _VERSION,
            "comment": self.comment,
            "entries": sorted(self.entries),
        }
        path.write_text(json.dumps(data, indent=2) + "\n")

    def split(
        self, diagnostics: list[Diagnostic]
    ) -> tuple[list[Diagnostic], list[Diagnostic], list[str]]:
        """Partition ``diagnostics`` into (active, baselined, stale).

        ``stale`` is the list of baseline entries no diagnostic matched —
        debt that has been paid and should be removed from the file.
        """
        active: list[Diagnostic] = []
        baselined: list[Diagnostic] = []
        matched: set[str] = set()
        for diag in diagnostics:
            if diag.fingerprint in self.entries:
                baselined.append(diag)
                matched.add(diag.fingerprint)
            else:
                active.append(diag)
        stale = sorted(self.entries - matched)
        return active, baselined, stale

    @classmethod
    def from_diagnostics(cls, diagnostics: list[Diagnostic]) -> "Baseline":
        return cls(
            entries={d.fingerprint for d in diagnostics},
            comment=(
                "Accepted pre-existing findings; remove entries as the "
                "debt is paid. New code must not add to this file."
            ),
        )
