"""``python -m repro.analysis`` — run the static-analysis engine.

Exit codes: 0 clean, 1 findings (or, under ``--strict``, warnings /
stale baseline entries), 2 usage errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from .baseline import Baseline
from .engine import AnalysisReport, Analyzer
from .registry import all_checkers

DEFAULT_BASELINE_NAME = "analysis_baseline.json"


def _default_root() -> Path:
    """The ``src/`` directory this package was loaded from."""
    return Path(__file__).resolve().parents[2]


def _default_baseline(root: Path) -> Path | None:
    """Look for the committed baseline next to (or above) the root."""
    for candidate in (root, *root.parents):
        path = candidate / DEFAULT_BASELINE_NAME
        if path.exists():
            return path
    return None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repo-specific static analysis (rules RP001-RP011)",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the src/ tree)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail on warnings and stale baseline entries (CI gate)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default=None,
        help="output format: human text (default), machine-readable "
        "JSON, or GitHub Actions ::error annotations for PR lines",
    )
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="shorthand for --format json",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE_NAME} found "
        f"beside the analyzed tree; 'none' disables)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    return parser


def _escape_gh(text: str) -> str:
    """Escape a GitHub Actions workflow-command message payload."""
    return (
        text.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    )


def _github_annotation(diag) -> str:
    """One ``::error`` line the Actions runner turns into a PR
    annotation at the offending file/line."""
    level = "error" if diag.severity.value == "error" else "warning"
    return (
        f"::{level} file={diag.path},line={diag.line},col={diag.col},"
        f"title={diag.rule} {diag.severity.value}::"
        f"{_escape_gh(diag.message)}"
    )


def _merge(reports: list[AnalysisReport]) -> AnalysisReport:
    first = reports[0]
    merged = AnalysisReport(
        root=first.root,
        checked_files=sum(r.checked_files for r in reports),
        active=[d for r in reports for d in r.active],
        baselined=[d for r in reports for d in r.baselined],
        stale_baseline=[],
        suppressed_count=sum(r.suppressed_count for r in reports),
    )
    # Stale = baseline entries no report's diagnostics matched anywhere.
    stale = set(reports[0].stale_baseline)
    for r in reports[1:]:
        stale &= set(r.stale_baseline)
    merged.stale_baseline = sorted(stale)
    return merged


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for checker in all_checkers():
            print(f"{checker.rule}  {checker.name}: {checker.description}")
        return 0

    roots = args.paths or [_default_root()]
    for root in roots:
        if not root.exists():
            print(f"error: no such path: {root}", file=sys.stderr)
            return 2

    baseline: Baseline | None = None
    baseline_path = args.baseline
    if baseline_path is not None and str(baseline_path) == "none":
        baseline_path = None
    elif baseline_path is None:
        baseline_path = _default_baseline(roots[0].resolve())
    if baseline_path is not None and baseline_path.exists():
        baseline = Baseline.load(baseline_path)

    reports = [Analyzer(root).run(baseline=baseline) for root in roots]
    report = _merge(reports)

    if args.write_baseline:
        target = baseline_path or roots[0].resolve().parent / DEFAULT_BASELINE_NAME
        Baseline.from_diagnostics(report.active).save(target)
        print(f"wrote {len(report.active)} entries to {target}")
        return 0

    out_format = args.format or ("json" if args.as_json else "text")
    if out_format == "json":
        print(json.dumps(report.to_json(), indent=2))
    elif out_format == "github":
        for diag in report.active:
            print(_github_annotation(diag))
        for entry in report.stale_baseline:
            print(
                "::warning title=stale baseline::"
                f"{_escape_gh(f'remove paid-off entry: {entry}')}"
            )
    else:
        for diag in report.active:
            print(diag.format())
        for entry in report.stale_baseline:
            print(f"stale baseline entry (remove it): {entry}")
        summary = (
            f"{len(report.active)} finding(s) in {report.checked_files} "
            f"file(s); {len(report.baselined)} baselined, "
            f"{report.suppressed_count} suppressed"
        )
        if report.stale_baseline:
            summary += f", {len(report.stale_baseline)} stale baseline"
        print(summary)

    code = report.exit_code(strict=args.strict)
    if args.strict and code == 0 and report.stale_baseline:
        code = 1
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    sys.exit(main())
