"""Forward dataflow framework over function bodies.

The concurrency rules all answer questions of the form "what is true at
this program point?" — which locks are *must*-held, which arena buffers
*may* be aliased.  :class:`FlowAnalysis` walks one function body in
source order, threading an abstract :class:`FlowState` through the
statement structure:

* ``if``/``else``: both arms run on copies of the entry state and the
  results are joined (a dead arm — one that returned/raised — is
  dropped from the join, so early-return guards refine the state).
* ``while``/``for``: the body runs twice and joins with the entry
  state, which reaches the fixed point for both lattice directions used
  here (must-sets shrink once, may-sets grow once per loop-carried
  binding; a second pass flags patterns like re-taking a buffer whose
  first-iteration view is still live).
* ``with``: :meth:`on_with_enter` / :meth:`on_with_exit` bracket the
  body — the hook pair the lock rules live on.
* ``try``: the body runs normally; each handler and the ``finally``
  run on a *copy of the entry state* joined back in, approximating
  "the body may have stopped anywhere".
* ``return``/``raise``/``break``/``continue`` mark the state dead;
  dead states stop propagating.

Nested ``def``/``lambda``/class bodies are *not* entered — they execute
at call time, not at definition time, and the interprocedural rules
handle calls explicitly.

Subclasses observe the walk through ``on_call`` / ``on_load`` /
``on_store`` / ``on_with_enter`` / ``on_with_exit``; expression
operands are visited left-to-right before the hook for the enclosing
node fires, matching Python evaluation order closely enough for these
rules.
"""

from __future__ import annotations

import ast
from typing import Generic, TypeVar

__all__ = ["FlowState", "FlowAnalysis"]


class FlowState:
    """Base class for abstract states.  Subclasses must override
    :meth:`copy` and :meth:`join` (in-place merge)."""

    dead: bool = False

    def copy(self) -> "FlowState":
        raise NotImplementedError

    def join(self, other: "FlowState") -> None:
        raise NotImplementedError


S = TypeVar("S", bound=FlowState)

_LOOP_PASSES = 2


class FlowAnalysis(Generic[S]):
    """Structured forward walk of one function body."""

    # -- hooks (override what the rule needs) ---------------------------
    def on_call(self, state: S, node: ast.Call) -> None:
        """After a call's receiver and arguments were visited."""

    def on_load(self, state: S, node: ast.expr) -> None:
        """A Name/Attribute/Subscript read in a load context."""

    def on_store(self, state: S, target: ast.expr, value: ast.expr | None,
                 node: ast.stmt) -> None:
        """One assignment target, after the value was visited."""

    def on_with_enter(self, state: S, item: ast.withitem,
                      node: ast.With | ast.AsyncWith) -> None:
        """A ``with`` item's context manager was entered."""

    def on_with_exit(self, state: S, item: ast.withitem,
                     node: ast.With | ast.AsyncWith) -> None:
        """A ``with`` item's context manager is about to exit."""

    # -- driver ---------------------------------------------------------
    def run(self, fn: ast.FunctionDef | ast.AsyncFunctionDef,
            state: S) -> S:
        self.block(fn.body, state)
        return state

    def block(self, stmts: list[ast.stmt], state: S) -> None:
        for stmt in stmts:
            if state.dead:
                return
            self.stmt(stmt, state)

    # -- statements -----------------------------------------------------
    def stmt(self, stmt: ast.stmt, state: S) -> None:
        if isinstance(stmt, ast.If):
            self.expr(stmt.test, state)
            self._branch(state, stmt.body, stmt.orelse)
        elif isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._loop(stmt, state)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            self._with(stmt, state)
        elif isinstance(stmt, ast.Try):
            self._try(stmt, state)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.expr(stmt.value, state)
            state.dead = True
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self.expr(stmt.exc, state)
            state.dead = True
        elif isinstance(stmt, (ast.Break, ast.Continue)):
            state.dead = True
        elif isinstance(stmt, ast.Assign):
            self.expr(stmt.value, state)
            for target in stmt.targets:
                self._store_target(target, stmt.value, stmt, state)
        elif isinstance(stmt, ast.AugAssign):
            self.expr(stmt.value, state)
            # ``x += v`` reads then writes the target.
            self.expr(stmt.target, state)
            self.on_store(state, stmt.target, stmt.value, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self.expr(stmt.value, state)
                self._store_target(stmt.target, stmt.value, stmt, state)
        elif isinstance(stmt, (ast.Expr, ast.Assert, ast.Delete)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.expr(child, state)
        elif isinstance(
            stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # bodies run at call time, not here
        else:
            # Import/Global/Pass/...: visit any expression children.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.expr(child, state)

    def _store_target(self, target: ast.expr, value: ast.expr | None,
                      stmt: ast.stmt, state: S) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._store_target(elt, None, stmt, state)
            return
        if isinstance(target, ast.Starred):
            self._store_target(target.value, None, stmt, state)
            return
        if isinstance(target, (ast.Attribute, ast.Subscript)):
            # The base object is *read* to perform the store.
            self.expr(target.value, state)
            if isinstance(target, ast.Subscript):
                self.expr(target.slice, state)
        self.on_store(state, target, value, stmt)

    def _branch(self, state: S, body: list[ast.stmt],
                orelse: list[ast.stmt]) -> None:
        then_state = state.copy()
        else_state = state.copy()
        self.block(body, then_state)
        self.block(orelse, else_state)
        self._merge_into(state, [then_state, else_state])

    def _merge_into(self, state: S, results: list[S]) -> None:
        live = [s for s in results if not s.dead]
        if not live:
            state.dead = True
            return
        merged = live[0]
        for other in live[1:]:
            merged.join(other)
        state.__dict__.update(merged.__dict__)
        state.dead = False

    def _loop(self, stmt: ast.While | ast.For | ast.AsyncFor, state: S
              ) -> None:
        if isinstance(stmt, ast.While):
            self.expr(stmt.test, state)
        else:
            self.expr(stmt.iter, state)
            self._store_target(stmt.target, None, stmt, state)
        # Zero-iteration path joins with one- and two-iteration paths.
        paths = [state.copy()]
        body_state = state.copy()
        for _ in range(_LOOP_PASSES):
            self.block(stmt.body, body_state)
            if body_state.dead:
                break
            paths.append(body_state.copy())
        self._merge_into(state, paths)
        if not state.dead:
            self.block(stmt.orelse, state)

    def _with(self, stmt: ast.With | ast.AsyncWith, state: S) -> None:
        for item in stmt.items:
            self.expr(item.context_expr, state)
            self.on_with_enter(state, item, stmt)
            if item.optional_vars is not None:
                self._store_target(item.optional_vars, item.context_expr,
                                   stmt, state)
        self.block(stmt.body, state)
        for item in reversed(stmt.items):
            self.on_with_exit(state, item, stmt)

    def _try(self, stmt: ast.Try, state: S) -> None:
        entry = state.copy()
        self.block(stmt.body, state)
        if not state.dead:
            self.block(stmt.orelse, state)
        results = [state.copy()]
        for handler in stmt.handlers:
            h_state = entry.copy()
            self.block(handler.body, h_state)
            results.append(h_state)
        self._merge_into(state, results)
        if stmt.finalbody:
            if state.dead:
                final_state = entry
                self.block(stmt.finalbody, final_state)
                state.__dict__.update(final_state.__dict__)
                state.dead = True
            else:
                self.block(stmt.finalbody, state)

    # -- expressions ----------------------------------------------------
    def expr(self, node: ast.expr, state: S) -> None:
        if isinstance(node, ast.Call):
            self.expr(node.func, state)
            for arg in node.args:
                inner = arg.value if isinstance(arg, ast.Starred) else arg
                self.expr(inner, state)
            for kw in node.keywords:
                self.expr(kw.value, state)
            self.on_call(state, node)
            return
        if isinstance(node, (ast.Lambda, ast.GeneratorExp)):
            return  # deferred execution
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            # Comprehensions *do* run here; visit generators and element.
            for gen in node.generators:
                self.expr(gen.iter, state)
                for cond in gen.ifs:
                    self.expr(cond, state)
            if isinstance(node, ast.DictComp):
                self.expr(node.key, state)
                self.expr(node.value, state)
            else:
                self.expr(node.elt, state)
            return
        if isinstance(node, (ast.Name, ast.Attribute, ast.Subscript)):
            if isinstance(node, ast.Attribute):
                self.expr(node.value, state)
            elif isinstance(node, ast.Subscript):
                self.expr(node.value, state)
                self.expr(node.slice, state)
            if isinstance(getattr(node, "ctx", ast.Load()), ast.Load):
                self.on_load(state, node)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self.expr(child, state)
