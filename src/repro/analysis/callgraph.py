"""Project symbol table and call graph for interprocedural rules.

The per-module checkers (RP001-RP008) only ever look at one AST at a
time; the concurrency rules (RP009-RP011) need to know *who calls whom*
so a field access inside a private helper can inherit the locks its
callers hold, and a ``with self._lock:`` block can "see" the blocking
pool shutdown three calls away.

:class:`ProjectIndex` builds, from a :class:`~..engine.Project`:

* every top-level class with its methods, the inferred types of its
  ``self.<attr>`` fields, and its declared lock attributes
  (``self._lock = threading.Lock()`` / ``make_lock("Cls._lock")``);
* every module-level function;
* a conservative call resolver.  Resolution is *annotation driven*: a
  receiver resolves only through ``self``, a parameter annotation, an
  ``x: T`` / ``x = ClassName(...)`` local, a ``self.attr`` whose type
  was pinned in ``__init__``, or a call to a function with a return
  annotation.  Anything else resolves to nothing — the concurrency
  rules prefer silence over guessing, because a wrong edge turns into a
  wrong "deadlock" report.

Class names are assumed project-unique (true in this repo; the analyzer
would merely merge methods of homonymous classes, never crash).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from .base import attribute_chain

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Project, SourceModule

__all__ = [
    "FunctionInfo",
    "ClassInfo",
    "LockDecl",
    "ProjectIndex",
    "annotation_type",
]

# Constructors recognised as lock declarations, mapped to their kind.
_LOCK_CONSTRUCTORS = {
    "Lock": "Lock",
    "RLock": "RLock",
    "Condition": "Condition",
    "make_lock": "Lock",
    "make_rlock": "RLock",
    "make_condition": "Condition",
}

# Kinds a thread may re-acquire without deadlocking itself.
_REENTRANT_KINDS = frozenset({"RLock", "Condition"})


def annotation_type(node: ast.expr | None) -> str | None:
    """Best-effort class name out of an annotation expression.

    ``Foo`` -> ``"Foo"``; ``pkg.Foo`` -> ``"Foo"``; ``"Foo"`` (string
    annotation) is parsed; ``Foo | None`` / ``Optional[Foo]`` unwrap to
    ``Foo``.  Containers (``list[Foo]``) return ``None`` — the element
    type is not the receiver type.
    """
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            node = ast.parse(node.value, mode="eval").body
        except SyntaxError:
            return None
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = annotation_type(node.left)
        if left is not None and left != "None":
            return left
        right = annotation_type(node.right)
        return right if right != "None" else None
    if isinstance(node, ast.Subscript):
        base = annotation_type(node.value)
        if base == "Optional":
            return annotation_type(node.slice)
        return None
    return None


@dataclass(frozen=True)
class LockDecl:
    """One lock attribute declared in a class ``__init__``."""

    attr: str  # "_lock"
    lock_id: str  # "Scheduler._cond" — canonical name for order graphs
    kind: str  # "Lock" | "RLock" | "Condition"
    lineno: int

    @property
    def reentrant(self) -> bool:
        return self.kind in _REENTRANT_KINDS


@dataclass(eq=False)
class FunctionInfo:
    """One function or method, plus where it lives.

    Identity-hashed: two infos are the same function only if they are
    the same object, so summaries can key dicts on them.
    """

    name: str
    qualname: str  # "Scheduler.submit" or "module.func"
    module: "SourceModule"
    node: ast.FunctionDef | ast.AsyncFunctionDef
    class_name: str = ""  # "" for module-level functions

    @property
    def is_method(self) -> bool:
        return bool(self.class_name)


@dataclass(eq=False)
class ClassInfo:
    """One top-level class: methods, field types, and lock attrs."""

    name: str
    module: "SourceModule"
    node: ast.ClassDef
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    attr_types: dict[str, str] = field(default_factory=dict)
    locks: dict[str, LockDecl] = field(default_factory=dict)
    bases: tuple[str, ...] = ()


class ProjectIndex:
    """Symbol table + call resolver over every module of a project."""

    def __init__(self, project: "Project") -> None:
        self.project = project
        self.classes: dict[str, ClassInfo] = {}
        # (module rel-path, function name) -> module-level function.
        self.module_functions: dict[tuple[str, str], FunctionInfo] = {}
        self.functions: list[FunctionInfo] = []
        for module in project.modules:
            self._index_module(module)
        for info in self.classes.values():
            self._infer_class_attrs(info)

    # -- construction ---------------------------------------------------
    def _index_module(self, module: "SourceModule") -> None:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                info = self.classes.setdefault(
                    node.name,
                    ClassInfo(
                        name=node.name,
                        module=module,
                        node=node,
                        bases=tuple(
                            b.id
                            for b in node.bases
                            if isinstance(b, ast.Name)
                        ),
                    ),
                )
                for item in node.body:
                    if isinstance(
                        item, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        fn = FunctionInfo(
                            name=item.name,
                            qualname=f"{node.name}.{item.name}",
                            module=module,
                            node=item,
                            class_name=node.name,
                        )
                        info.methods[item.name] = fn
                        self.functions.append(fn)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    name=node.name,
                    qualname=node.name,
                    module=module,
                    node=node,
                )
                self.module_functions[(module.rel, node.name)] = fn
                self.functions.append(fn)

    def _infer_class_attrs(self, info: ClassInfo) -> None:
        """Field types and lock declarations from ``__init__`` (plus
        ``self.attr: T`` annotations anywhere in the class body)."""
        for method in info.methods.values():
            for node in ast.walk(method.node):
                if isinstance(node, ast.AnnAssign):
                    chain = attribute_chain(node.target)
                    if chain and len(chain) == 2 and chain[0] == "self":
                        t = annotation_type(node.annotation)
                        if t is not None:
                            info.attr_types.setdefault(chain[1], t)
        init = info.methods.get("__init__")
        if init is None:
            return
        for node in ast.walk(init.node):
            if not isinstance(node, ast.Assign) or len(node.targets) != 1:
                continue
            chain = attribute_chain(node.targets[0])
            if chain is None or len(chain) != 2 or chain[0] != "self":
                continue
            attr = chain[1]
            value = node.value
            if not isinstance(value, ast.Call):
                continue
            fchain = attribute_chain(value.func)
            if fchain is None:
                continue
            ctor = fchain[-1]
            kind = _LOCK_CONSTRUCTORS.get(ctor)
            if kind is not None:
                info.locks.setdefault(
                    attr,
                    LockDecl(
                        attr=attr,
                        lock_id=f"{info.name}.{attr}",
                        kind=kind,
                        lineno=node.lineno,
                    ),
                )
            elif ctor in self.classes:
                info.attr_types.setdefault(attr, ctor)

    # -- lookups --------------------------------------------------------
    def lock_decl(self, class_name: str, attr: str) -> LockDecl | None:
        info = self.classes.get(class_name)
        if info is None:
            return None
        decl = info.locks.get(attr)
        if decl is not None:
            return decl
        for base in info.bases:
            decl = self.lock_decl(base, attr)
            if decl is not None:
                return decl
        return None

    def method(self, class_name: str, name: str) -> FunctionInfo | None:
        info = self.classes.get(class_name)
        if info is None:
            return None
        fn = info.methods.get(name)
        if fn is not None:
            return fn
        for base in info.bases:
            fn = self.method(base, name)
            if fn is not None:
                return fn
        return None

    def attr_type(self, class_name: str, attr: str) -> str | None:
        info = self.classes.get(class_name)
        if info is None:
            return None
        t = info.attr_types.get(attr)
        if t is not None:
            return t
        for base in info.bases:
            t = self.attr_type(base, attr)
            if t is not None:
                return t
        return None

    # -- local type environments ----------------------------------------
    def local_types(self, fn: FunctionInfo) -> dict[str, str]:
        """Map of local variable name -> class name, from parameter
        annotations, ``x: T`` declarations, ``x = ClassName(...)``
        constructor calls, and calls with a class return annotation."""
        env: dict[str, str] = {}
        args = fn.node.args
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ):
            t = annotation_type(arg.annotation)
            if t is not None and t in self.classes:
                env[arg.arg] = t
        for node in ast.walk(fn.node):
            target: ast.expr | None = None
            value: ast.expr | None = None
            if isinstance(node, ast.AnnAssign):
                target = node.target
                if isinstance(target, ast.Name):
                    t = annotation_type(node.annotation)
                    if t is not None and t in self.classes:
                        env[target.id] = t
                continue
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target, value = node.targets[0], node.value
            if not isinstance(target, ast.Name) or value is None:
                continue
            if not isinstance(value, ast.Call):
                continue
            t = self._call_result_type(value, fn, env)
            if t is not None:
                env[target.id] = t
        return env

    def _call_result_type(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        env: dict[str, str],
    ) -> str | None:
        chain = attribute_chain(call.func)
        if chain is None:
            return None
        if len(chain) == 1 and chain[0] in self.classes:
            return chain[0]
        callee = self.resolve_call(call, fn, env)
        if callee is None or callee.name == "__init__":
            return callee.class_name if callee is not None else None
        t = annotation_type(callee.node.returns)
        if t is not None and t in self.classes:
            return t
        return None

    # -- call resolution -------------------------------------------------
    def receiver_type(
        self,
        receiver: tuple[str, ...],
        fn: FunctionInfo,
        env: dict[str, str],
    ) -> str | None:
        """Class name of a dotted receiver chain, or ``None``."""
        if receiver == ("self",):
            return fn.class_name or None
        if len(receiver) == 1:
            return env.get(receiver[0])
        base = self.receiver_type(receiver[:-1], fn, env)
        if base is None:
            return None
        return self.attr_type(base, receiver[-1])

    def resolve_call(
        self,
        call: ast.Call,
        fn: FunctionInfo,
        env: dict[str, str],
    ) -> FunctionInfo | None:
        """The single function a call resolves to, or ``None``."""
        chain = attribute_chain(call.func)
        if chain is None:
            return None
        if len(chain) == 1:
            name = chain[0]
            if name in self.classes:
                return self.method(name, "__init__")
            return self.module_functions.get((fn.module.rel, name))
        recv_type = self.receiver_type(chain[:-1], fn, env)
        if recv_type is None:
            return None
        return self.method(recv_type, chain[-1])
