"""Plugin registry for analysis checkers.

Checkers self-register at import time via the :func:`register` decorator;
:func:`all_checkers` imports the built-in rule package and returns one
instance per registered class, sorted by rule code so output ordering is
deterministic.
"""

from __future__ import annotations

from .base import Checker

__all__ = ["register", "all_checkers"]

_REGISTRY: dict[str, type[Checker]] = {}


def register(cls: type[Checker]) -> type[Checker]:
    """Class decorator adding a :class:`Checker` subclass to the registry."""
    rule = getattr(cls, "rule", "")
    if not rule:
        raise ValueError(f"checker {cls.__name__} must define a rule code")
    if rule in _REGISTRY and _REGISTRY[rule] is not cls:
        raise ValueError(f"duplicate checker for rule {rule}")
    _REGISTRY[rule] = cls
    return cls


def all_checkers() -> list[Checker]:
    """One instance of every registered checker, sorted by rule code."""
    # Importing the package triggers registration of the built-in rules.
    from . import checkers  # noqa: F401  (import for side effect)

    return [_REGISTRY[rule]() for rule in sorted(_REGISTRY)]
