"""Checker base class and shared AST helpers."""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Iterable, Iterator

from .diagnostics import Diagnostic, Severity

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .engine import Project, SourceModule

__all__ = [
    "Checker",
    "attribute_chain",
    "call_keywords",
    "import_aliases",
]


class Checker:
    """One analysis rule.

    Subclasses set ``rule``/``name``/``description`` and override either
    :meth:`check_module` (per-module rules) or :meth:`check_project`
    (cross-module rules that need the whole tree, e.g. protocol
    totality).  Both may be overridden.
    """

    rule: str = ""
    name: str = ""
    description: str = ""

    def check_module(self, module: "SourceModule") -> Iterable[Diagnostic]:
        return ()

    def check_project(self, project: "Project") -> Iterable[Diagnostic]:
        return ()

    # ------------------------------------------------------------------
    def diag(
        self,
        module: "SourceModule",
        node: ast.AST,
        message: str,
        *,
        severity: Severity = Severity.ERROR,
    ) -> Diagnostic:
        return Diagnostic(
            path=module.rel,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.rule,
            message=message,
            severity=severity,
        )


def attribute_chain(node: ast.AST) -> tuple[str, ...] | None:
    """Dotted-name parts of a Name/Attribute chain, or ``None``.

    ``graph.indices`` -> ``("graph", "indices")``;
    ``self.data.indptr`` -> ``("self", "data", "indptr")``; anything with
    a non-name base (calls, subscripts) returns ``None``.
    """
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return None


def call_keywords(node: ast.Call) -> dict[str, ast.expr]:
    """Explicit keyword arguments of a call (ignores ``**spread``)."""
    return {kw.arg: kw.value for kw in node.keywords if kw.arg is not None}


def import_aliases(tree: ast.Module) -> dict[str, str]:
    """Map local names to the canonical module/object they refer to.

    ``import numpy as np`` -> ``{"np": "numpy"}``;
    ``import time as _time`` -> ``{"_time": "time"}``;
    ``from time import monotonic`` -> ``{"monotonic": "time.monotonic"}``.
    Relative imports keep their dots (``from ..graph import csr`` ->
    ``{"csr": "..graph.csr"}``).
    """
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for a in node.names:
                aliases[a.asname or a.name.split(".")[0]] = a.name
        elif isinstance(node, ast.ImportFrom):
            prefix = "." * node.level + (node.module or "")
            for a in node.names:
                if a.name == "*":
                    continue
                aliases[a.asname or a.name] = (
                    f"{prefix}.{a.name}" if prefix else a.name
                )
    return aliases


def walk_functions(
    tree: ast.Module,
) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node
