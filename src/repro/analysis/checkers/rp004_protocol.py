"""RP004 — protocol totality.

The distributed runtime's correctness argument (exactly-once work
accounting over a faulty network, DESIGN.md §7) quantifies over *every*
message kind: a kind that is sent but never drained deadlocks the event
loop; a work shipment without sender-side ack/retry bookkeeping leaks
the claimed free rank on the first dropped message.  The catalog of
kinds is :class:`repro.distributed.protocol.MsgType`; this rule keeps
the catalog and the dispatch code in ``runtime.py`` / ``worker.py``
total with respect to each other.

Flagged:

* a ``MsgType`` member never referenced by the dispatch modules;
* a kind sent point-to-point (``comm.send``) with no matching
  ``receive``/``peek`` arm;
* a raw string tag in a comm call — drift-prone; spell it
  ``MsgType.X``;
* a tag literal that names no ``MsgType`` member;
* a function sending ``MsgType.WORK`` with no shipment-tracker
  (ack/retry) bookkeeping.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from ..base import Checker, attribute_chain, call_keywords, walk_functions
from ..diagnostics import Diagnostic
from ..engine import Project, SourceModule
from ..registry import register

DISPATCH_FILES = ("runtime.py", "worker.py")

COMM_SENDS = frozenset({"send"})
COMM_BROADCASTS = frozenset({"broadcast"})
COMM_RECEIVES = frozenset({"receive", "peek"})
COMM_CALLS = COMM_SENDS | COMM_BROADCASTS | COMM_RECEIVES

# Attribute names that evidence sender-side ack/retry bookkeeping.
TRACKER_ATTRS = frozenset({"register", "retransmissions", "in_flight"})

WORK_MEMBER = "WORK"


def _msgtype_members(module: SourceModule) -> dict[str, str] | None:
    """``MsgType`` members (NAME -> wire value), or ``None`` if absent."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and node.name == "MsgType":
            members: dict[str, str] = {}
            for stmt in node.body:
                if (
                    isinstance(stmt, ast.Assign)
                    and len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and isinstance(stmt.value, ast.Constant)
                    and isinstance(stmt.value.value, str)
                ):
                    members[stmt.targets[0].id] = stmt.value.value
            return members
    return None


def _tag_argument(node: ast.Call, func_attr: str) -> ast.expr | None:
    """The tag expression of a comm call, positional or keyword."""
    kw = call_keywords(node)
    if "tag" in kw:
        return kw["tag"]
    # Positional layouts: send(src, dst, tag, ...), broadcast(src, tag,
    # ...), receive(dst, time, tag), peek(dst, tag).
    index = {"send": 2, "broadcast": 1, "receive": 2, "peek": 1}[func_attr]
    if len(node.args) > index:
        return node.args[index]
    return None


@dataclass
class _TagUse:
    module: SourceModule
    node: ast.Call
    kind: str  # "send" | "broadcast" | "receive"
    member: str | None  # resolved MsgType member name
    raw: str | None  # raw string literal, if one was used


@dataclass
class _Dispatch:
    """Evidence collected from the dispatch modules."""

    referenced: set[str] = field(default_factory=set)
    uses: list[_TagUse] = field(default_factory=list)


def _collect(
    modules: list[SourceModule], members: dict[str, str]
) -> _Dispatch:
    by_value = {v: k for k, v in members.items()}
    out = _Dispatch()
    for module in modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                chain = attribute_chain(node)
                if (
                    chain is not None
                    and len(chain) >= 2
                    and chain[-2] == "MsgType"
                    and chain[-1] in members
                ):
                    out.referenced.add(chain[-1])
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute) or func.attr not in COMM_CALLS:
                continue
            tag = _tag_argument(node, func.attr)
            if tag is None:
                continue
            member: str | None = None
            raw: str | None = None
            tag_chain = attribute_chain(tag)
            if (
                tag_chain is not None
                and len(tag_chain) >= 2
                and tag_chain[-2] == "MsgType"
            ):
                member = tag_chain[-1]
            elif isinstance(tag, ast.Constant) and isinstance(tag.value, str):
                raw = tag.value
                member = by_value.get(tag.value)
            else:
                continue  # tag comes from a variable; not resolvable
            kind = (
                "send"
                if func.attr in COMM_SENDS
                else "broadcast"
                if func.attr in COMM_BROADCASTS
                else "receive"
            )
            out.uses.append(
                _TagUse(module=module, node=node, kind=kind,
                        member=member, raw=raw)
            )
            if member is not None:
                out.referenced.add(member)
    return out


@register
class ProtocolTotalityChecker(Checker):
    rule = "RP004"
    name = "protocol-totality"
    description = (
        "every MsgType has a dispatch arm, every point-to-point send a "
        "receive, every work ship an ack/retry path"
    )

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        protocol = project.find("distributed/protocol.py")
        if protocol is None:
            return
        members = _msgtype_members(protocol)
        if members is None:
            yield self.diag(
                protocol,
                protocol.tree,
                "distributed/protocol.py defines no MsgType enum: message "
                "kinds must be cataloged for totality checking",
            )
            return
        dispatch_modules = [
            m
            for m in project.modules
            if m.package == "distributed" and m.filename in DISPATCH_FILES
        ]
        if not dispatch_modules:
            return
        evidence = _collect(dispatch_modules, members)

        received = {u.member for u in evidence.uses if u.kind == "receive"}
        for name in sorted(members):
            if name not in evidence.referenced:
                yield self.diag(
                    protocol,
                    protocol.tree,
                    f"MsgType.{name} has no dispatch arm in "
                    f"{'/'.join(DISPATCH_FILES)}: dead or undrained "
                    f"message kind",
                )
        for use in evidence.uses:
            if use.raw is not None:
                if use.member is None:
                    yield self.diag(
                        use.module,
                        use.node,
                        f"message tag {use.raw!r} names no MsgType member",
                    )
                else:
                    yield self.diag(
                        use.module,
                        use.node,
                        f"raw message tag {use.raw!r}: spell it "
                        f"MsgType.{use.member} so totality is checkable",
                    )
            if (
                use.kind == "send"
                and use.member is not None
                and use.member not in received
            ):
                yield self.diag(
                    use.module,
                    use.node,
                    f"MsgType.{use.member} is sent point-to-point but "
                    f"never received/peeked: undrained messages stall "
                    f"the event loop",
                )
        yield from self._check_work_sends(evidence)

    # ------------------------------------------------------------------
    def _check_work_sends(self, evidence: _Dispatch) -> Iterable[Diagnostic]:
        work_sends = [
            u
            for u in evidence.uses
            if u.kind == "send" and u.member == WORK_MEMBER
        ]
        if not work_sends:
            return
        for use in work_sends:
            func = _enclosing_function(use.module.tree, use.node)
            if func is None:
                continue
            if not _has_tracker_bookkeeping(func):
                yield self.diag(
                    use.module,
                    use.node,
                    f"work shipment in '{func.name}' has no shipment-"
                    f"tracker bookkeeping (ack/retry path): a dropped "
                    f"message would leak the claimed rank",
                )


def _enclosing_function(
    tree: ast.Module, target: ast.AST
) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
    for func in walk_functions(tree):
        for node in ast.walk(func):
            if node is target:
                return func
    return None


def _has_tracker_bookkeeping(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> bool:
    for node in ast.walk(func):
        if isinstance(node, ast.Attribute) and node.attr in TRACKER_ATTRS:
            return True
        if isinstance(node, ast.Name) and node.id == "tracker":
            return True
    return False
