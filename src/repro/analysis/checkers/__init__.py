"""Built-in rule catalog; importing this package registers every rule.

================ =====================================================
Rule             Invariant
================ =====================================================
``RP001``        Shared-memory write safety: CSR arrays attached from
                 ``SharedCSR`` (and parameters documented read-only)
                 are never mutated in place.
``RP002``        Determinism: no unseeded RNG and no time-dependent
                 branching inside ``core/``, ``storage/``, ``gpusim/``.
``RP003``        Dtype/overflow hygiene: array constructors carry an
                 explicit ``dtype``; no narrow integer dtypes on
                 CSR offsets or match counts.
``RP004``        Protocol totality: every ``MsgType`` has a dispatch
                 arm; every point-to-point send has a receive; every
                 work ship has an ack/retry path.
``RP005``        Config drift: every ``CuTSConfig`` field is live and
                 every CLI flag is read.
``RP006``        Durable-write safety: ``checkpoint/`` persists bytes
                 only through the atomic tmp+fsync+rename helpers.
``RP007``        Service liveness: every queue ``get()``/``join()``
                 carries a timeout (the sleep-under-lock half moved to
                 the dataflow-based RP010).
``RP008``        Swallowed exceptions: in ``service/`` and
                 ``distributed/``, an except handler must raise, call,
                 assign, or return — never silently drop the error.
``RP009``        Lock discipline: a field guarded by a lock at most
                 access sites is guarded at every site, including
                 through private helper calls (inferred, not declared).
``RP010``        Lock order: no acquisition cycles across the call
                 graph, no re-acquiring a held non-reentrant lock, no
                 unbounded blocking while holding a lock.
``RP011``        Arena aliasing: an ``ExpansionArena`` buffer is never
                 re-taken under an outstanding view, never escapes
                 into results uncopied, never written under a live
                 slice.
================ =====================================================
"""

from __future__ import annotations

from . import (  # noqa: F401  (imports register the checkers)
    rp001_shared_write,
    rp002_determinism,
    rp003_dtype,
    rp004_protocol,
    rp005_config,
    rp006_durable_write,
    rp007_service,
    rp008_swallowed,
    rp009_lock_discipline,
    rp010_lock_order,
    rp011_arena_alias,
)
