"""RP010 — static lock-order and held-lock-blocking detection.

Deadlocks in the service stack need two threads and a scheduler fluke
to reproduce, so tests rarely see them; the *order graph* that causes
them is fully static.  This rule builds it: a node per lock
(``Class._attr`` ids shared with the runtime sanitizer), and an edge
``A -> B`` wherever code acquires ``B`` while holding ``A`` — directly
via nested ``with``, or transitively through any call the
:class:`~..callgraph.ProjectIndex` can resolve (each function's
may-acquire set is propagated over the call graph to a fixed point).

Findings, all in ``service/``, ``parallel/``, ``checkpoint/``:

* **lock-order cycles** — edges whose endpoints sit in one strongly
  connected component; two threads walking a 2-cycle from opposite
  ends deadlock.  Each offending edge is reported with the conflicting
  edge's site as evidence.
* **self-deadlock** — re-acquiring a held non-reentrant ``Lock``.
* **blocking while holding a lock** — un-bounded operations
  (``time.sleep``, un-timed queue ``get``/``join``, un-timed
  ``Event``/``Condition.wait``, socket I/O, pool ``shutdown(wait=True)``,
  un-timed ``Future.result``) reached — directly or through resolved
  calls — while a lock is held.  A blocked holder stalls every thread
  queued on that lock, which is a liveness bug even when no cycle
  exists.  (This supersedes the ``time.sleep``-under-lock half of the
  old syntactic RP007; the un-timed-queue-wait half stays in RP007
  because it applies with no lock held at all.)

``Condition.wait`` releases the condition it waits on, so waiting on
the *held* condition is the sanctioned idiom and is exempt; waiting
un-timed while holding any *other* lock still reports.

:func:`lock_order_edges` exposes the edge graph for the runtime
sanitizer's static-vs-dynamic diff (``analysis/sanitizer.py``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable

from ..base import Checker, attribute_chain, import_aliases
from ..callgraph import FunctionInfo, ProjectIndex
from ..dataflow import FlowAnalysis, FlowState
from ..diagnostics import Diagnostic
from ..engine import Project
from ..registry import register
from ._concurrency import SCOPE_PACKAGES, blocking_call, resolve_lock

__all__ = ["lock_order_edges", "LockOrderChecker"]


@dataclass(eq=False)
class _Summary:
    """Per-function may-facts, closed over the call graph."""

    acquires: set[str] = field(default_factory=set)
    # How this function blocks, e.g. "time.sleep()" or a call chain
    # "GraphHandle.close() -> ParallelMatcher.close() -> ...".
    blocks: str | None = None


@dataclass(frozen=True)
class _Edge:
    held: str
    acquired: str

    def reversed(self) -> "_Edge":
        return _Edge(self.acquired, self.held)


@dataclass(eq=False)
class _EdgeInfo:
    rel: str
    line: int
    via: str | None  # callee qualname when the edge is transitive


class _HeldState(FlowState):
    def __init__(self, held: dict[str, int] | None = None) -> None:
        self.held: dict[str, int] = dict(held or {})
        self.dead = False

    def copy(self) -> "_HeldState":
        state = _HeldState(self.held)
        state.dead = self.dead
        return state

    def join(self, other: "_HeldState") -> None:
        self.held = {
            lock: min(count, other.held[lock])
            for lock, count in self.held.items()
            if lock in other.held
        }


class _Graph:
    """The whole-project lock-order graph plus per-function facts."""

    def __init__(self, index: ProjectIndex) -> None:
        self.index = index
        self.edges: dict[_Edge, _EdgeInfo] = {}
        self.summaries: dict[FunctionInfo, _Summary] = {}
        self.callees: dict[FunctionInfo, list[tuple[ast.Call, FunctionInfo]]] = {}
        self.envs: dict[FunctionInfo, dict[str, str]] = {}
        self.aliases: dict[str, dict[str, str]] = {}
        self._summarize()

    def module_aliases(self, fn: FunctionInfo) -> dict[str, str]:
        rel = fn.module.rel
        if rel not in self.aliases:
            self.aliases[rel] = import_aliases(fn.module.tree)
        return self.aliases[rel]

    # -- phase A: function summaries to a fixed point -------------------
    def _summarize(self) -> None:
        for fn in self.index.functions:
            env = self.index.local_types(fn)
            self.envs[fn] = env
            summary = _Summary()
            callees: list[tuple[ast.Call, FunctionInfo]] = []
            aliases = self.module_aliases(fn)
            for node in ast.walk(fn.node):
                if isinstance(node, (ast.With, ast.AsyncWith)):
                    for item in node.items:
                        resolved = resolve_lock(
                            item.context_expr, fn, self.index, env
                        )
                        if resolved is not None:
                            summary.acquires.add(resolved[0])
                elif isinstance(node, ast.Call):
                    callee = self.index.resolve_call(node, fn, env)
                    if callee is not None and callee is not fn:
                        callees.append((node, callee))
                    elif summary.blocks is None:
                        hit = blocking_call(node, aliases)
                        if hit is not None:
                            summary.blocks = hit[0]
            self.summaries[fn] = summary
            self.callees[fn] = callees

        for _ in range(len(self.summaries) + 1):
            changed = False
            for fn, summary in self.summaries.items():
                for _, callee in self.callees[fn]:
                    callee_summary = self.summaries.get(callee)
                    if callee_summary is None:
                        continue
                    if not callee_summary.acquires <= summary.acquires:
                        summary.acquires |= callee_summary.acquires
                        changed = True
                    if summary.blocks is None and callee_summary.blocks:
                        summary.blocks = (
                            f"{callee.qualname}() -> "
                            f"{callee_summary.blocks}"
                        )
                        changed = True
            if not changed:
                break

    def add_edge(self, held: str, acquired: str, fn: FunctionInfo,
                 line: int, via: str | None) -> None:
        edge = _Edge(held, acquired)
        if edge not in self.edges:
            self.edges[edge] = _EdgeInfo(fn.module.rel, line, via)


class _OrderFlow(FlowAnalysis[_HeldState]):
    """Phase B: walk one function with must-held state, recording order
    edges and blocking-while-held findings."""

    def __init__(self, graph: _Graph, fn: FunctionInfo,
                 checker: "LockOrderChecker") -> None:
        self.graph = graph
        self.fn = fn
        self.checker = checker
        self.env = graph.envs[fn]
        self.aliases = graph.module_aliases(fn)
        self.findings: list[Diagnostic] = []
        self._reported: set[int] = set()
        self._callees = {
            id(call): callee for call, callee in graph.callees[fn]
        }

    def _in_scope(self) -> bool:
        return self.fn.module.package in SCOPE_PACKAGES

    def on_with_enter(self, state, item, node):
        resolved = resolve_lock(item.context_expr, self.fn,
                                self.graph.index, self.env)
        if resolved is None:
            return
        lock, decl = resolved
        if (
            lock in state.held
            and decl is not None
            and not decl.reentrant
            and self._in_scope()
            and node.lineno not in self._reported
        ):
            self._reported.add(node.lineno)
            self.findings.append(self.checker.diag(
                self.fn.module, node,
                f"self-deadlock: re-acquiring non-reentrant {lock} "
                f"already held by this thread blocks forever; use an "
                f"RLock or restructure so the lock is taken once",
            ))
        for held in sorted(state.held):
            if held != lock:
                self.graph.add_edge(held, lock, self.fn, node.lineno,
                                    None)
        state.held[lock] = state.held.get(lock, 0) + 1

    def on_with_exit(self, state, item, node):
        resolved = resolve_lock(item.context_expr, self.fn,
                                self.graph.index, self.env)
        if resolved is None:
            return
        lock = resolved[0]
        count = state.held.get(lock, 0)
        if count <= 1:
            state.held.pop(lock, None)
        else:
            state.held[lock] = count - 1

    def on_call(self, state, node):
        callee = self._callees.get(id(node))
        if callee is not None:
            summary = self.graph.summaries.get(callee)
            if summary is None:
                return
            for acquired in sorted(summary.acquires):
                for held in sorted(state.held):
                    if held != acquired:
                        self.graph.add_edge(held, acquired, self.fn,
                                            node.lineno, callee.qualname)
            if state.held and summary.blocks and self._in_scope():
                self._report_blocking(
                    state, node,
                    f"call to {callee.qualname}() may block "
                    f"({summary.blocks})",
                    releases=None,
                )
            return
        hit = blocking_call(node, self.aliases)
        if hit is None or not state.held or not self._in_scope():
            return
        desc, kind = hit
        releases = None
        if kind == "cond-wait":
            func = node.func
            if isinstance(func, ast.Attribute):
                resolved = resolve_lock(func.value, self.fn,
                                        self.graph.index, self.env)
                if resolved is not None:
                    releases = resolved[0]
        self._report_blocking(state, node, desc, releases=releases)

    def _report_blocking(self, state, node, desc: str,
                         releases: str | None) -> None:
        held = sorted(lock for lock in state.held if lock != releases)
        if not held or node.lineno in self._reported:
            return
        self._reported.add(node.lineno)
        self.findings.append(self.checker.diag(
            self.fn.module, node,
            f"{desc} while holding {', '.join(held)}: a blocked holder "
            f"stalls every thread queued on the lock; release it first "
            f"or bound the wait with a timeout",
        ))


def _strongly_connected(nodes: set[str],
                        succ: dict[str, set[str]]) -> dict[str, int]:
    """Iterative Tarjan; returns node -> component id."""
    index_of: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    comp: dict[str, int] = {}
    counter = [0]
    comp_id = [0]

    for root in sorted(nodes):
        if root in index_of:
            continue
        work: list[tuple[str, list[str]]] = [(root, sorted(succ.get(root, ())))]
        index_of[root] = low[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            if children:
                child = children.pop(0)
                if child not in index_of:
                    index_of[child] = low[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, sorted(succ.get(child, ()))))
                elif child in on_stack:
                    low[node] = min(low[node], index_of[child])
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index_of[node]:
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        comp[member] = comp_id[0]
                        if member == node:
                            break
                    comp_id[0] += 1
    return comp


def _build_graph(project: Project) -> _Graph:
    index = ProjectIndex(project)
    graph = _Graph(index)
    # Phase B runs over every function so edges contributed by helper
    # modules exist even when findings are scoped; findings collected
    # by the checker below.
    return graph


def lock_order_edges(
    project: Project,
) -> dict[tuple[str, str], tuple[str, int]]:
    """``(held, acquired) -> (path, line)`` static order edges, for the
    runtime sanitizer's dead-discipline diff."""
    checker = LockOrderChecker()
    graph = checker.analyze(project)
    return {
        (edge.held, edge.acquired): (info.rel, info.line)
        for edge, info in graph.edges.items()
    }


@register
class LockOrderChecker(Checker):
    rule = "RP010"
    name = "lock-order-safety"
    description = (
        "in service/, parallel/, checkpoint/: no lock-order cycles, no "
        "re-acquiring a held non-reentrant lock, and no unbounded "
        "blocking (sleep/queue/socket/pool waits) while holding a lock"
    )

    def analyze(self, project: Project) -> _Graph:
        graph = _build_graph(project)
        self._flows = []
        for fn in graph.index.functions:
            flow = _OrderFlow(graph, fn, self)
            flow.run(fn.node, _HeldState())
            self._flows.append(flow)
        return graph

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        graph = self.analyze(project)
        for flow in self._flows:
            yield from flow.findings
        yield from self._cycle_findings(graph)

    # ------------------------------------------------------------------
    def _cycle_findings(self, graph: _Graph) -> Iterable[Diagnostic]:
        nodes: set[str] = set()
        succ: dict[str, set[str]] = {}
        for edge in graph.edges:
            nodes.add(edge.held)
            nodes.add(edge.acquired)
            succ.setdefault(edge.held, set()).add(edge.acquired)
        comp = _strongly_connected(nodes, succ)
        by_rel = graph.index.project.by_rel()
        for edge in sorted(graph.edges,
                           key=lambda e: (e.held, e.acquired)):
            if comp.get(edge.held) != comp.get(edge.acquired):
                continue
            info = graph.edges[edge]
            module = by_rel.get(info.rel)
            if module is None or module.package not in SCOPE_PACKAGES:
                continue
            conflict = self._conflicting_site(graph, edge)
            via = f" (via {info.via}())" if info.via else ""
            yield Diagnostic(
                path=info.rel,
                line=info.line,
                col=1,
                rule=self.rule,
                message=(
                    f"lock-order cycle: acquiring {edge.acquired} while "
                    f"holding {edge.held}{via} conflicts with the "
                    f"opposite order established at {conflict}; two "
                    f"threads taking both paths deadlock — pick one "
                    f"global order"
                ),
            )

    def _conflicting_site(self, graph: _Graph, edge: _Edge) -> str:
        reverse = graph.edges.get(edge.reversed())
        if reverse is not None:
            return f"{reverse.rel}:{reverse.line}"
        # Longer cycle: cite any edge leaving the acquired lock.
        for other, info in sorted(
            graph.edges.items(),
            key=lambda kv: (kv[0].held, kv[0].acquired),
        ):
            if other.held == edge.acquired:
                return f"{info.rel}:{info.line}"
        return "<unknown>"
