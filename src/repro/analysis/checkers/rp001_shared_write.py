"""RP001 — shared-memory write safety.

The multi-core engine (:mod:`repro.parallel`) maps the data graph's CSR
arrays into one POSIX shared-memory segment that every worker process
attaches zero-copy.  A single in-place write through any attached view
corrupts the graph under every sibling worker *silently* — NumPy cannot
tell a shared mapping from a private one.  The same discipline applies
to any parameter a docstring documents as read-only.

Flagged:

* subscript stores / augmented stores whose target is an attribute chain
  ending in a CSR array field (``x.indices[i] = v``, ``g.indptr[:] += 1``);
* mutating method calls on such chains (``g.indices.sort()``);
* scatter-style ufunc writes (``np.add.at(g.indices, ...)``) whose first
  argument is such a chain;
* any of the above rooted at a parameter documented ``read-only`` in the
  enclosing function's docstring.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable, Iterator

from ..base import Checker, attribute_chain, walk_functions
from ..diagnostics import Diagnostic
from ..engine import SourceModule
from ..registry import register

CSR_FIELDS = frozenset(
    {"indptr", "indices", "rindptr", "rindices", "labels"}
)

MUTATING_METHODS = frozenset(
    {"sort", "fill", "resize", "partition", "put", "itemset", "byteswap"}
)

_READONLY_PARAM_RE = re.compile(
    r"``?(?P<name>\w+)``?[^\n]{0,100}read-?only", re.IGNORECASE
)


def _is_csr_chain(node: ast.AST) -> str | None:
    """Dotted name when ``node`` is an attribute chain ending in a CSR
    array field (``graph.indices``, ``self.data.indptr``)."""
    chain = attribute_chain(node)
    if chain is not None and len(chain) >= 2 and chain[-1] in CSR_FIELDS:
        return ".".join(chain)
    return None


def _readonly_params(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    doc = ast.get_docstring(func) or ""
    args = func.args
    names = {
        a.arg
        for a in args.posonlyargs + args.args + args.kwonlyargs
        if a.arg not in ("self", "cls")
    }
    return {
        m.group("name")
        for m in _READONLY_PARAM_RE.finditer(doc)
        if m.group("name") in names
    }


def _rooted_at(node: ast.AST, names: set[str]) -> str | None:
    """Dotted name when the chain's root Name is in ``names``."""
    chain = attribute_chain(node)
    if chain is not None and chain[0] in names:
        return ".".join(chain)
    return None


@register
class SharedWriteChecker(Checker):
    rule = "RP001"
    name = "shared-memory-write-safety"
    description = (
        "no in-place mutation of CSR arrays shared across workers or of "
        "parameters documented read-only"
    )

    def check_module(self, module: SourceModule) -> Iterable[Diagnostic]:
        yield from self._check_csr_writes(module)
        yield from self._check_readonly_params(module)

    # ------------------------------------------------------------------
    def _check_csr_writes(self, module: SourceModule) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not isinstance(target, ast.Subscript):
                        continue
                    name = _is_csr_chain(target.value)
                    if name:
                        yield self.diag(
                            module,
                            node,
                            f"in-place write to CSR array '{name}': CSR "
                            f"views are shared read-only across workers",
                        )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, None)

    def _check_call(
        self,
        module: SourceModule,
        node: ast.Call,
        readonly: set[str] | None,
    ) -> Iterator[Diagnostic]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr in MUTATING_METHODS:
            name = (
                _rooted_at(func.value, readonly)
                if readonly is not None
                else _is_csr_chain(func.value)
            )
            if name:
                what = (
                    "read-only parameter" if readonly is not None
                    else "CSR array"
                )
                yield self.diag(
                    module,
                    node,
                    f"mutating call '{name}.{func.attr}()' on {what} "
                    f"'{name}'",
                )
        elif func.attr == "at" and node.args:
            # np.add.at(target, ...) — scatter write into target.
            name = (
                _rooted_at(node.args[0], readonly)
                if readonly is not None
                else _is_csr_chain(node.args[0])
            )
            if name:
                what = (
                    "read-only parameter" if readonly is not None
                    else "CSR array"
                )
                yield self.diag(
                    module,
                    node,
                    f"scatter write 'ufunc.at' into {what} '{name}'",
                )

    # ------------------------------------------------------------------
    def _check_readonly_params(
        self, module: SourceModule
    ) -> Iterator[Diagnostic]:
        for func in walk_functions(module.tree):
            readonly = _readonly_params(func)
            if not readonly:
                continue
            for node in ast.walk(func):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = (
                        node.targets
                        if isinstance(node, ast.Assign)
                        else [node.target]
                    )
                    for target in targets:
                        base: ast.AST | None = None
                        if isinstance(target, ast.Subscript):
                            base = target.value
                        elif isinstance(target, ast.Attribute):
                            base = target
                        if base is None:
                            continue
                        name = _rooted_at(base, readonly)
                        if name:
                            yield self.diag(
                                module,
                                node,
                                f"write through read-only parameter "
                                f"'{name}' (documented read-only in "
                                f"'{func.name}')",
                            )
                elif isinstance(node, ast.Call):
                    yield from self._check_call(module, node, readonly)
