"""RP008 — no swallowed exceptions on the resilience path.

The service and distributed layers are exactly where failures *must*
surface: the dispatcher's fallback logic, the journal, the fault
injector, and the runtime's recovery machinery all key off exceptions.
A handler that catches and then does nothing turns a crash the chaos
suite would catch into a silent wrong answer.

Flagged in ``service/`` and ``distributed/``:

* an ``except`` handler whose body neither raises, nor calls anything,
  nor binds a fallback value, nor returns — i.e. the body is only
  ``pass`` / ``continue`` / ``break`` / a bare constant.  Such a
  handler cannot possibly have *handled* the error; it only hid it.
* a **bare** ``except:`` that neither re-raises nor calls anything —
  bare excepts also trap ``KeyboardInterrupt``/``SystemExit``, so
  hiding those is doubly wrong.

Deliberate recoveries stay legal: assigning a fallback
(``payload = {...}``), returning a default, logging, re-raising a typed
error, or counting the failure all involve a call, an assignment, a
``return``, or a ``raise``.  A genuinely intentional swallow can carry
``# repro: ignore[RP008]`` with its justification.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Checker
from ..diagnostics import Diagnostic
from ..engine import SourceModule
from ..registry import register

SCOPES = frozenset({"service", "distributed", "versioning"})

_HANDLED_NODES = (
    ast.Raise,
    ast.Call,
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.NamedExpr,
    ast.Return,
)


def _handles(handler: ast.ExceptHandler) -> set[type[ast.AST]]:
    """Which "actually did something" node kinds the body contains."""
    kinds: set[type[ast.AST]] = set()
    for stmt in handler.body:
        for node in ast.walk(stmt):
            for kind in _HANDLED_NODES:
                if isinstance(node, kind):
                    kinds.add(kind)
    return kinds


@register
class SwallowedExceptionChecker(Checker):
    rule = "RP008"
    name = "swallowed-exceptions"
    description = (
        "service/ and distributed/ handlers must handle: an except "
        "body that neither raises, calls, assigns, nor returns "
        "silently hides the failure it caught"
    )

    def check_module(self, module: SourceModule) -> Iterable[Diagnostic]:
        if module.package not in SCOPES:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Try):
                for handler in node.handlers:
                    yield from self._check_handler(module, handler)

    # ------------------------------------------------------------------
    def _check_handler(
        self, module: SourceModule, handler: ast.ExceptHandler
    ) -> Iterator[Diagnostic]:
        kinds = _handles(handler)
        if handler.type is None:
            # Bare except: traps KeyboardInterrupt/SystemExit too, so
            # anything short of re-raising or reacting (a call) hides
            # signals the process must honour.
            if ast.Raise not in kinds and ast.Call not in kinds:
                yield self.diag(
                    module,
                    handler,
                    "bare except that neither re-raises nor reacts "
                    "swallows every error including KeyboardInterrupt; "
                    "catch a specific exception and handle it",
                )
            return
        if kinds:
            return
        caught = ast.unparse(handler.type)
        yield self.diag(
            module,
            handler,
            f"except {caught}: handler neither raises, calls, assigns, "
            f"nor returns — the failure is silently swallowed; handle "
            f"it (fallback value, counter, re-raise) or let it "
            f"propagate",
        )
