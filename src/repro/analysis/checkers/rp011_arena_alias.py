"""RP011 — aliasing safety for ``ExpansionArena`` buffers.

The columnar engine's zero-allocation property comes from
``arena.take(name, size, dtype)`` handing out *reused* views of named
backing buffers (DESIGN.md §13).  That reuse is a sharp edge: the same
name taken twice returns overlapping memory, and a view that outlives
the kernel stage it was taken for silently changes under the next
``take``.  GSI's Preallocated-Combined-Array has the identical
discipline, enforced there by the kernel launch structure; here it is
only a calling convention — so this rule checks it.

Per function (in ``core/`` and ``versioning/`` modules), a forward
may-alias dataflow tags
each local with the set of arena buffer names its value may view.
Tags propagate through ``.reshape``/``.view``/slice expressions and
conditional joins; assignment kills the target's old tags;
``.copy()``/``np.array``/arithmetic produce fresh memory.  A variable
is *outstanding* while any later line still reads it.  Three patterns
report:

* **double take** — ``take("x")`` while another outstanding variable
  still views buffer ``"x"``: the earlier view is silently clobbered.
* **escape** — a tagged view passed into ``MatchResult(...)`` or
  ``SearchStats(...)``: results must own their memory (``.copy()``
  first), or the next expansion rewrites a caller-visible array.
* **write under view** — storing into ``buf[...]`` (or ``out=buf``)
  while an outstanding *slice* of the same buffer exists: the view's
  contents change mid-use.

``take`` with a non-literal name (the fanout tables' computed names)
yields no tag and is deliberately unchecked — a dynamic name cannot be
proven to collide, and the rule prefers silence over guessing.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import Checker, attribute_chain, call_keywords, walk_functions
from ..dataflow import FlowAnalysis, FlowState
from ..diagnostics import Diagnostic
from ..engine import SourceModule
from ..registry import register

SCOPE = frozenset({"core", "versioning"})

# Calls whose result owns fresh memory, killing view tags.
_FRESHENERS = frozenset({"copy", "compress", "astype", "tolist", "sum",
                         "array", "ascontiguousarray", "concatenate"})
# Methods that return another view of the same buffer.
_VIEWERS = frozenset({"reshape", "view", "ravel"})

_RESULT_TYPES = frozenset({"MatchResult", "SearchStats"})


def _is_arena_take(call: ast.Call) -> str | None:
    """The literal buffer name if this is ``<arena-ish>.take("lit", ...)``."""
    func = call.func
    if not isinstance(func, ast.Attribute) or func.attr != "take":
        return None
    chain = attribute_chain(func.value)
    if chain is None or not any("arena" in part.lower() for part in chain):
        return None
    if call.args and isinstance(call.args[0], ast.Constant) and isinstance(
        call.args[0].value, str
    ):
        return call.args[0].value
    return None


class _AliasState(FlowState):
    """May-alias facts: variable -> buffer tags (+ which are slices)."""

    def __init__(self) -> None:
        self.tags: dict[str, frozenset[str]] = {}
        self.views: set[str] = set()  # vars whose tags came via a slice
        self.dead = False

    def copy(self) -> "_AliasState":
        state = _AliasState()
        state.tags = dict(self.tags)
        state.views = set(self.views)
        state.dead = self.dead
        return state

    def join(self, other: "_AliasState") -> None:
        merged: dict[str, frozenset[str]] = {}
        for var in set(self.tags) | set(other.tags):
            union = self.tags.get(var, frozenset()) | other.tags.get(
                var, frozenset()
            )
            if union:
                merged[var] = union
        self.tags = merged
        self.views |= other.views


class _ArenaFlow(FlowAnalysis[_AliasState]):
    def __init__(self, checker: "ArenaAliasChecker",
                 module: SourceModule,
                 fn: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.checker = checker
        self.module = module
        self.findings: list[Diagnostic] = []
        self._reported: set[tuple[int, str]] = set()
        # The Name being assigned by the current statement: re-taking a
        # buffer into the variable that already viewed it is a rebind,
        # not a clobber.
        self._assign_target: str | None = None
        # Lexical liveness: the lines on which each name is read.
        self.loads: dict[str, list[int]] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Load
            ):
                self.loads.setdefault(node.id, []).append(node.lineno)

    def stmt(self, stmt, state):
        target: str | None = None
        if (
            isinstance(stmt, ast.Assign)
            and len(stmt.targets) == 1
            and isinstance(stmt.targets[0], ast.Name)
        ):
            target = stmt.targets[0].id
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            target = stmt.target.id
        previous = self._assign_target
        self._assign_target = target
        try:
            super().stmt(stmt, state)
        finally:
            self._assign_target = previous

    def _outstanding(self, var: str, after_line: int) -> bool:
        return any(line > after_line for line in self.loads.get(var, ()))

    def _report(self, node: ast.AST, key: str, message: str) -> None:
        site = (node.lineno, key)
        if site in self._reported:
            return
        self._reported.add(site)
        self.findings.append(
            self.checker.diag(self.module, node, message)
        )

    # -- tagging -------------------------------------------------------
    def _value_tags(
        self, expr: ast.expr | None, state: _AliasState
    ) -> tuple[frozenset[str], bool]:
        """(may-alias tags, came-through-a-slice) of an expression."""
        if expr is None:
            return frozenset(), False
        if isinstance(expr, ast.Name):
            return state.tags.get(expr.id, frozenset()), (
                expr.id in state.views
            )
        if isinstance(expr, ast.Subscript):
            tags, _ = self._value_tags(expr.value, state)
            # Slicing a tagged array yields a *view* of the buffer;
            # fancy/scalar indexing copies (numpy semantics).
            if isinstance(expr.slice, ast.Slice):
                return tags, True
            return frozenset(), False
        if isinstance(expr, ast.IfExp):
            body_tags, body_view = self._value_tags(expr.body, state)
            else_tags, else_view = self._value_tags(expr.orelse, state)
            return body_tags | else_tags, body_view or else_view
        if isinstance(expr, ast.Call):
            name = _is_arena_take(expr)
            if name is not None:
                return frozenset({name}), False
            func = expr.func
            if isinstance(func, ast.Attribute):
                if func.attr in _VIEWERS:
                    tags, is_view = self._value_tags(func.value, state)
                    return tags, is_view
                if func.attr in _FRESHENERS:
                    return frozenset(), False
            chain = attribute_chain(func)
            if chain is not None and chain[-1] in _FRESHENERS:
                return frozenset(), False
            return frozenset(), False
        return frozenset(), False

    # -- hooks ---------------------------------------------------------
    def on_call(self, state, node):
        name = _is_arena_take(node)
        if name is not None:
            self._check_double_take(state, node, name)
            return
        chain = attribute_chain(node.func)
        if chain is not None and chain[-1] in _RESULT_TYPES:
            self._check_escape(state, node, chain[-1])
            return
        out = call_keywords(node).get("out")
        if isinstance(out, ast.Name):
            self._check_write(state, node, out.id)

    def _check_double_take(self, state: _AliasState, node: ast.Call,
                           name: str) -> None:
        for var in sorted(state.tags):
            if var == self._assign_target or name not in state.tags[var]:
                continue
            if not self._outstanding(var, node.lineno):
                continue
            self._report(
                node, f"take:{name}",
                f"buffer '{name}' taken again while '{var}' (still read "
                f"after line {node.lineno}) views it: take() reuses the "
                f"backing array, so '{var}' is silently clobbered — "
                f"finish with the old view first or use a second buffer "
                f"name",
            )

    def _check_escape(self, state: _AliasState, node: ast.Call,
                      ctor: str) -> None:
        args: list[ast.expr] = list(node.args)
        args.extend(kw.value for kw in node.keywords
                    if kw.value is not None)
        for arg in args:
            tags, _ = self._value_tags(arg, state)
            if not tags:
                continue
            named = ", ".join(f"'{t}'" for t in sorted(tags))
            self._report(
                node, f"escape:{named}",
                f"arena view of buffer {named} escapes into {ctor}(): "
                f"the next take() rewrites it under the caller — pass "
                f"a .copy() instead",
            )

    def _check_write(self, state: _AliasState, node: ast.AST,
                     target_var: str) -> None:
        target_tags = state.tags.get(target_var, frozenset())
        if not target_tags:
            return
        for var in sorted(state.tags):
            if var == target_var or var not in state.views:
                continue
            shared = state.tags[var] & target_tags
            if not shared:
                continue
            if not self._outstanding(var, node.lineno):
                continue
            named = ", ".join(f"'{t}'" for t in sorted(shared))
            self._report(
                node, f"write:{var}",
                f"write to '{target_var}' (buffer {named}) while the "
                f"outstanding slice '{var}' views the same buffer: the "
                f"view's contents change mid-use — write before "
                f"slicing, or copy the slice",
            )

    def on_store(self, state, target, value, node):
        if isinstance(target, ast.Subscript) and isinstance(
            target.value, ast.Name
        ):
            self._check_write(state, node, target.value.id)
            return
        if not isinstance(target, ast.Name):
            return
        tags, is_view = self._value_tags(value, state)
        if tags:
            state.tags[target.id] = tags
            if is_view:
                state.views.add(target.id)
            else:
                state.views.discard(target.id)
        else:
            state.tags.pop(target.id, None)
            state.views.discard(target.id)


@register
class ArenaAliasChecker(Checker):
    rule = "RP011"
    name = "arena-aliasing-safety"
    description = (
        "in core/ and versioning/: an ExpansionArena buffer is never re-taken while an "
        "outstanding view exists, never escapes into MatchResult/"
        "SearchStats uncopied, and is never written under a live slice"
    )

    def check_module(self, module: SourceModule) -> Iterable[Diagnostic]:
        if module.package not in SCOPE:
            return
        if ".take(" not in module.source:
            return
        for fn in walk_functions(module.tree):
            flow = _ArenaFlow(self, module, fn)
            flow.run(fn, _AliasState())
            yield from flow.findings
