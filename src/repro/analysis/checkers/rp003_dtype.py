"""RP003 — dtype/overflow hygiene.

CSR offsets and match counts overflow int32 on every graph the paper
evaluates (Enron alone has 367k edges; embedding counts reach 1e9+), and
NumPy's implicit dtype selection is platform-dependent (``np.arange(n)``
is int32 on Windows).  The repo's contract is ``INDEX_DTYPE`` (int64,
asserted in :class:`repro.graph.csr.CSRGraph`); this rule keeps every
array birth explicit so a narrowing dtype can never sneak in through a
default.

Scope: ``core/``, ``storage/``, ``graph/``, ``parallel/``,
``distributed/``.

Flagged:

* ``np.arange`` / ``np.zeros`` / ``np.empty`` / ``np.ones`` / ``np.full``
  without an explicit ``dtype=`` keyword;
* any reference to a narrow integer dtype (``np.int32``, ``np.int16``,
  ``np.int8``, unsigned variants) — including ``.astype(np.int32)`` —
  on code paths that index CSR arrays or accumulate counts.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import Checker, attribute_chain, call_keywords, import_aliases
from ..diagnostics import Diagnostic
from ..engine import SourceModule
from ..registry import register

SCOPE = frozenset({"core", "storage", "graph", "parallel", "distributed"})

CONSTRUCTORS = frozenset({"arange", "zeros", "empty", "ones", "full"})

NARROW_INT_DTYPES = frozenset(
    {"int32", "int16", "int8", "uint32", "uint16", "uint8", "intc", "short"}
)


@register
class DtypeChecker(Checker):
    rule = "RP003"
    name = "dtype-hygiene"
    description = (
        "array constructors carry an explicit dtype; no narrow integer "
        "dtypes on CSR offsets or match counts"
    )

    def check_module(self, module: SourceModule) -> Iterable[Diagnostic]:
        if module.package not in SCOPE:
            return
        aliases = import_aliases(module.tree)
        numpy_names = {
            local for local, target in aliases.items() if target == "numpy"
        }
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                chain = attribute_chain(node.func)
                if (
                    chain is not None
                    and len(chain) == 2
                    and chain[0] in numpy_names
                    and chain[1] in CONSTRUCTORS
                    and "dtype" not in call_keywords(node)
                ):
                    yield self.diag(
                        module,
                        node,
                        f"np.{chain[1]} without an explicit dtype: implicit "
                        f"integer width is platform-dependent; state the "
                        f"dtype (INDEX_DTYPE for CSR indices/offsets)",
                    )
            elif isinstance(node, ast.Attribute):
                chain = attribute_chain(node)
                if (
                    chain is not None
                    and len(chain) == 2
                    and chain[0] in numpy_names
                    and chain[1] in NARROW_INT_DTYPES
                ):
                    yield self.diag(
                        module,
                        node,
                        f"narrow integer dtype np.{chain[1]}: CSR offsets "
                        f"and match counts overflow 32 bits on paper-scale "
                        f"graphs; use INDEX_DTYPE (int64)",
                    )
