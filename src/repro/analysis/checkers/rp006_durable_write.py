"""RP006 — durable-write safety in the checkpoint package.

A checkpoint's whole value is that a crash mid-write cannot destroy it.
Every byte the checkpoint package persists must therefore go through
:mod:`repro.checkpoint.atomic` (tmp file + fsync + rename); a bare
``open(path, "w")`` that crashes after truncating leaves a corrupt or
empty file where the last good snapshot used to be.

Scope: ``checkpoint/`` only.  ``atomic.py`` itself is exempt — it is
the one module allowed to hold a writable file descriptor.

Flagged:

* builtin ``open(...)`` with a write-capable mode (any of ``w``, ``a``,
  ``x``, ``+``), whether the mode is positional or ``mode=`` keyword;
* ``.open("w")``-style method calls (``Path.open`` and friends);
* ``.write_text(...)`` / ``.write_bytes(...)`` convenience writers,
  which truncate in place.

Read-mode opens are fine; durability only concerns writes.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Checker, call_keywords
from ..diagnostics import Diagnostic
from ..engine import SourceModule
from ..registry import register

SCOPE = "checkpoint"

EXEMPT_MODULES = frozenset({"atomic.py"})

WRITE_MODE_CHARS = frozenset("wax+")

CONVENIENCE_WRITERS = frozenset({"write_text", "write_bytes"})


def _literal_mode(node: ast.Call, position: int) -> str | None:
    """The call's file-mode string when it is a literal, else ``None``.

    ``position`` is the index of the mode among positional args
    (1 for builtin ``open``, 0 for ``path.open``).
    """
    mode = call_keywords(node).get("mode")
    if mode is None and len(node.args) > position:
        mode = node.args[position]
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


def _is_write_mode(mode: str | None) -> bool:
    # No literal mode means open() defaulted to "r" — or the mode is
    # dynamic, which the one exempt module should be handling anyway.
    return mode is not None and bool(WRITE_MODE_CHARS & set(mode))


@register
class DurableWriteChecker(Checker):
    rule = "RP006"
    name = "durable-write-safety"
    description = (
        "checkpoint/ persists bytes only via the atomic tmp+fsync+rename "
        "helpers — no bare write-mode open / write_text / write_bytes"
    )

    def check_module(self, module: SourceModule) -> Iterable[Diagnostic]:
        if module.package != SCOPE:
            return
        if module.path.name in EXEMPT_MODULES:
            return
        yield from self._check_calls(module)

    def _check_calls(self, module: SourceModule) -> Iterator[Diagnostic]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                if _is_write_mode(_literal_mode(node, 1)):
                    yield self.diag(
                        module,
                        node,
                        "bare write-mode open() in checkpoint/: a crash "
                        "mid-write corrupts the file in place; route the "
                        "bytes through repro.checkpoint.atomic",
                    )
            elif isinstance(func, ast.Attribute):
                if func.attr == "open":
                    if _is_write_mode(_literal_mode(node, 0)):
                        yield self.diag(
                            module,
                            node,
                            "write-mode .open() in checkpoint/: use the "
                            "atomic tmp+fsync+rename helpers instead",
                        )
                elif func.attr in CONVENIENCE_WRITERS:
                    yield self.diag(
                        module,
                        node,
                        f"'.{func.attr}()' truncates the target in place; "
                        f"checkpoint bytes must commit via "
                        f"repro.checkpoint.atomic",
                    )
