"""RP002 — determinism in the exact-count engine.

Exact-count parity — serial == parallel == distributed, bit for bit —
is the ground truth every experiment and chaos test compares against.
That only holds if the engine's packages are deterministic functions of
their inputs: randomness must flow in as a seeded
``np.random.Generator`` (or a ``random.Random(seed)``), never be drawn
from ambient global state, and control flow must never depend on the
wall clock.

Scope: ``core/``, ``storage/``, ``gpusim/``.

Flagged:

* calls to legacy global-state RNG (``np.random.rand``, ``np.random
  .seed``, ``random.random``, ...);
* ``np.random.default_rng()`` / ``random.Random()`` without a seed
  argument;
* wall-clock reads (``time.monotonic()``, ``datetime.now()``, ...)
  inside a branch condition or comparison — modeled time from the cost
  model is fine, host time is not.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Checker, attribute_chain, import_aliases
from ..diagnostics import Diagnostic
from ..engine import SourceModule
from ..registry import register

SCOPE = frozenset({"core", "storage", "gpusim"})

SEEDED_FACTORIES = frozenset({"default_rng", "Generator", "SeedSequence"})

RANDOM_MODULE_FUNCS = frozenset(
    {
        "random", "randint", "randrange", "choice", "choices", "shuffle",
        "sample", "uniform", "gauss", "normalvariate", "betavariate",
        "expovariate", "triangular", "seed", "getrandbits", "randbytes",
    }
)

TIME_FUNCS = frozenset(
    {"time", "monotonic", "perf_counter", "process_time", "time_ns",
     "monotonic_ns", "perf_counter_ns"}
)

DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})


def _resolve(chain: tuple[str, ...], aliases: dict[str, str]) -> tuple[str, ...]:
    """Rewrite a chain's root through the module's import aliases."""
    root = aliases.get(chain[0])
    if root is None:
        return chain
    return tuple(root.split(".")) + chain[1:]


@register
class DeterminismChecker(Checker):
    rule = "RP002"
    name = "determinism"
    description = (
        "no unseeded RNG and no wall-clock branching in core/, storage/, "
        "gpusim/ — randomness flows in as a seeded Generator"
    )

    def check_module(self, module: SourceModule) -> Iterable[Diagnostic]:
        if module.package not in SCOPE:
            return
        aliases = import_aliases(module.tree)
        condition_calls = _calls_in_conditions(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = attribute_chain(node.func)
            if chain is None:
                continue
            resolved = _resolve(chain, aliases)
            yield from self._check_rng(module, node, resolved)
            yield from self._check_clock(
                module, node, resolved, node in condition_calls
            )

    # ------------------------------------------------------------------
    def _check_rng(
        self,
        module: SourceModule,
        node: ast.Call,
        chain: tuple[str, ...],
    ) -> Iterator[Diagnostic]:
        if len(chain) >= 2 and chain[0] == "numpy" and chain[-2] == "random":
            func = chain[-1]
            if func not in SEEDED_FACTORIES:
                yield self.diag(
                    module,
                    node,
                    f"global-state RNG call 'np.random.{func}': pass a "
                    f"seeded np.random.Generator in instead",
                )
            elif func == "default_rng" and not node.args and not node.keywords:
                yield self.diag(
                    module,
                    node,
                    "np.random.default_rng() without a seed draws OS "
                    "entropy; thread config.seed through",
                )
        elif chain[0] == "random" and len(chain) == 2:
            func = chain[1]
            if func in RANDOM_MODULE_FUNCS:
                yield self.diag(
                    module,
                    node,
                    f"bare 'random.{func}()' uses the shared global RNG; "
                    f"use a seeded random.Random instance",
                )
            elif func == "Random" and not node.args and not node.keywords:
                yield self.diag(
                    module,
                    node,
                    "random.Random() without a seed is nondeterministic",
                )

    def _check_clock(
        self,
        module: SourceModule,
        node: ast.Call,
        chain: tuple[str, ...],
        in_condition: bool,
    ) -> Iterator[Diagnostic]:
        if not in_condition:
            return
        is_time = (
            chain[0] == "time" and len(chain) == 2 and chain[1] in TIME_FUNCS
        ) or (len(chain) == 1 and chain[0] in TIME_FUNCS)
        is_datetime = (
            len(chain) >= 2
            and chain[0] in ("datetime",)
            and chain[-1] in DATETIME_FUNCS
        )
        if is_time or is_datetime:
            name = ".".join(chain)
            yield self.diag(
                module,
                node,
                f"time-dependent branch on '{name}()': control flow in "
                f"the exact-count engine must not read the wall clock",
            )


def _calls_in_conditions(tree: ast.Module) -> set[ast.Call]:
    """Every Call node appearing inside a branch test or a comparison."""
    found: set[ast.Call] = set()

    def mark(expr: ast.AST) -> None:
        for sub in ast.walk(expr):
            if isinstance(sub, ast.Call):
                found.add(sub)

    for node in ast.walk(tree):
        if isinstance(node, (ast.If, ast.While, ast.IfExp)):
            mark(node.test)
        elif isinstance(node, ast.Compare):
            mark(node)
        elif isinstance(node, ast.Assert):
            mark(node.test)
    return found
