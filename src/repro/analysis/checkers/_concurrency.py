"""Shared lock semantics for the concurrency rules (RP009/RP010).

Two things both rules need to agree on:

* **what counts as acquiring a lock** — :func:`resolve_lock` maps a
  ``with`` item (or an explicit receiver) to a canonical lock id.
  ``self._lock`` inside ``Scheduler`` resolves through the
  :class:`~..callgraph.ProjectIndex` to the declared ``Scheduler._lock``
  (same spelling the runtime sanitizer uses, so the static and dynamic
  order graphs diff cleanly).  A lock-*named* expression that does not
  resolve to a declaration still participates — under a module-scoped
  anonymous id — so fixture code and locals are not invisible, but
  anonymous ids never collide across modules into phantom cycles.

* **what counts as blocking indefinitely** — :func:`blocking_call`
  classifies calls that can park a thread with no bound: ``time.sleep``,
  un-timed queue/thread ``get``/``join``, un-timed ``Event``/
  ``Condition`` ``wait``, socket I/O, pool ``shutdown(wait=True)`` and
  un-timed ``Future.result``.  A single positional argument on
  ``get``/``join``/``wait``/``result`` is assumed to be a timeout (the
  stdlib signatures put it first or second); being wrong there only
  makes the rule quieter, never noisier.
"""

from __future__ import annotations

import ast

from ..base import attribute_chain, call_keywords
from ..callgraph import FunctionInfo, LockDecl, ProjectIndex

__all__ = [
    "SCOPE_PACKAGES",
    "resolve_lock",
    "blocking_call",
]

# Packages whose threading discipline the rules enforce.
SCOPE_PACKAGES = frozenset({"service", "parallel", "checkpoint", "versioning"})

_LOCKISH = ("lock", "cond", "mutex")

_QUEUEISH = ("queue", "thread", "worker", "proc", "pool", "_q")
_EVENTISH = ("event", "cond", "stop", "done", "ready")
_SOCKISH = ("sock", "conn")
_POOLISH = ("pool", "executor")
_FUTUREISH = ("future", "fut")

_SOCKET_OPS = frozenset({"recv", "recv_into", "accept", "connect", "sendall"})


def _receiver_has(chain: tuple[str, ...], keys: tuple[str, ...]) -> bool:
    return any(key in part.lower() for part in chain for key in keys)


def resolve_lock(
    expr: ast.expr,
    fn: FunctionInfo,
    index: ProjectIndex,
    env: dict[str, str],
) -> tuple[str, LockDecl | None] | None:
    """``(lock_id, decl)`` if ``expr`` denotes a lock, else ``None``.

    ``decl`` is the class-level declaration when the receiver type is
    known (giving reentrancy information); ``None`` for anonymous
    lock-named expressions.
    """
    if isinstance(expr, ast.Call):
        expr = expr.func  # ``registry.lock()`` style accessors
    chain = attribute_chain(expr)
    if chain is None:
        return None
    if len(chain) >= 2:
        recv_type = index.receiver_type(chain[:-1], fn, env)
        if recv_type is not None:
            decl = index.lock_decl(recv_type, chain[-1])
            if decl is not None:
                return decl.lock_id, decl
    if _receiver_has(chain, _LOCKISH):
        return f"{fn.module.rel}:{'.'.join(chain)}", None
    return None


def blocking_call(
    call: ast.Call, aliases: dict[str, str]
) -> tuple[str, str] | None:
    """``(description, kind)`` if the call can block without bound.

    Kinds: ``sleep``, ``queue-wait``, ``cond-wait`` (releases its own
    receiver while waiting), ``socket``, ``pool-shutdown``,
    ``future-result``.
    """
    chain = attribute_chain(call.func)
    if chain is None:
        return None
    kw = call_keywords(call)
    if (len(chain) == 1 and aliases.get(chain[0], "") == "time.sleep") or (
        len(chain) == 2
        and chain[1] == "sleep"
        and aliases.get(chain[0], "") == "time"
    ):
        return "time.sleep()", "sleep"
    if len(chain) < 2:
        return None
    receiver, meth = chain[:-1], chain[-1]
    dotted = ".".join(chain)
    timed = bool(call.args) or "timeout" in kw
    if meth in ("get", "join") and not timed and _receiver_has(
        receiver, _QUEUEISH
    ):
        return f"un-timed {dotted}()", "queue-wait"
    if meth == "wait" and not timed and _receiver_has(receiver, _EVENTISH):
        return f"un-timed {dotted}()", "cond-wait"
    if meth in _SOCKET_OPS and _receiver_has(receiver, _SOCKISH):
        return f"socket {dotted}()", "socket"
    if meth == "shutdown" and _receiver_has(receiver, _POOLISH):
        wait = kw.get("wait")
        if not (
            isinstance(wait, ast.Constant) and wait.value is False
        ):
            return f"{dotted}(wait=True)", "pool-shutdown"
    if meth == "result" and not timed and _receiver_has(
        receiver, _FUTUREISH
    ):
        return f"un-timed {dotted}()", "future-result"
    return None
