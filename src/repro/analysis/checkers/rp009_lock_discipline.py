"""RP009 — inferred lock discipline for shared class state.

The service/parallel/checkpoint packages share mutable objects across
threads (HTTP handlers, the dispatch thread, the journal writer, pool
callbacks).  Their guard protocol is *conventional* — "``Scheduler``
counters are touched under ``self._cond``" — and nothing enforced it:
one new method reading ``self.admitted`` without the lock compiles,
passes every test that doesn't race, and corrupts ``/metrics`` under
load.

This rule infers the convention instead of asking for annotations.  For
every class in scope it runs a must-held-locks dataflow over each
method (``__init__`` exempt — construction happens-before sharing) and
records, per attribute, which locks were held at every access site.  A
lock that guards **at least two sites and a strict majority** of an
attribute's sites is inferred to protect it; the minority sites are
reported, with the evidence (guarded/total counts and an example
guarded site) in the message.

Helper methods are not loopholes: a private method (``_name``) called
only with a lock held inherits that lock as held on entry — computed
as the intersection of the held sets at its intra-class call sites,
iterated to a fixed point so helpers-calling-helpers resolve too.

Attributes that are never written outside ``__init__`` are skipped
(immutable configuration needs no guard), as are the lock attributes
themselves.
"""

from __future__ import annotations

import ast
from collections import defaultdict
from dataclasses import dataclass
from typing import Iterable

from ..base import Checker, attribute_chain
from ..callgraph import ClassInfo, FunctionInfo, ProjectIndex
from ..dataflow import FlowAnalysis, FlowState
from ..diagnostics import Diagnostic
from ..engine import Project
from ..registry import register
from ._concurrency import SCOPE_PACKAGES, resolve_lock

# An inferred guard needs this many guarded sites...
_MIN_GUARDED_SITES = 2
# ...and guarded > unguarded (strict majority), checked at report time.


@dataclass(eq=False)
class _Access:
    attr: str
    fn: FunctionInfo
    node: ast.AST
    is_write: bool
    held: frozenset[str]


class _HeldState(FlowState):
    """Must-held lock multiset (count handles nested re-acquires)."""

    def __init__(self, held: dict[str, int] | None = None) -> None:
        self.held: dict[str, int] = dict(held or {})
        self.dead = False

    def copy(self) -> "_HeldState":
        state = _HeldState(self.held)
        state.dead = self.dead
        return state

    def join(self, other: "_HeldState") -> None:
        self.held = {
            lock: min(count, other.held[lock])
            for lock, count in self.held.items()
            if lock in other.held
        }

    def acquire(self, lock: str) -> None:
        self.held[lock] = self.held.get(lock, 0) + 1

    def release(self, lock: str) -> None:
        count = self.held.get(lock, 0)
        if count <= 1:
            self.held.pop(lock, None)
        else:
            self.held[lock] = count - 1

    def ids(self) -> frozenset[str]:
        return frozenset(self.held)


class _MethodFlow(FlowAnalysis[_HeldState]):
    """Collect ``self.<attr>`` accesses and intra-class call sites with
    the must-held lock set at each."""

    def __init__(
        self, fn: FunctionInfo, index: ProjectIndex, env: dict[str, str]
    ) -> None:
        self.fn = fn
        self.index = index
        self.env = env
        self.accesses: list[_Access] = []
        # (callee method name, held ids at the call)
        self.calls: list[tuple[str, frozenset[str]]] = []

    # -- hooks ---------------------------------------------------------
    def on_with_enter(self, state, item, node):
        resolved = resolve_lock(item.context_expr, self.fn, self.index,
                                self.env)
        if resolved is not None:
            state.acquire(resolved[0])

    def on_with_exit(self, state, item, node):
        resolved = resolve_lock(item.context_expr, self.fn, self.index,
                                self.env)
        if resolved is not None:
            state.release(resolved[0])

    def _record(self, state, node: ast.expr, is_write: bool) -> None:
        chain = attribute_chain(node)
        if chain is None or len(chain) != 2 or chain[0] != "self":
            return
        self.accesses.append(
            _Access(
                attr=chain[1],
                fn=self.fn,
                node=node,
                is_write=is_write,
                held=state.ids(),
            )
        )

    def on_load(self, state, node):
        if isinstance(node, ast.Attribute):
            self._record(state, node, is_write=False)

    def on_store(self, state, target, value, node):
        if isinstance(target, ast.Attribute):
            self._record(state, target, is_write=True)
        elif isinstance(target, ast.Subscript):
            # ``self.d[k] = v`` mutates the container held in ``self.d``.
            self._record(state, target.value, is_write=True)

    def on_call(self, state, node):
        chain = attribute_chain(node.func)
        if chain is not None and len(chain) == 2 and chain[0] == "self":
            self.calls.append((chain[1], state.ids()))


def _is_private(name: str) -> bool:
    return name.startswith("_") and not name.startswith("__")


@register
class LockDisciplineChecker(Checker):
    rule = "RP009"
    name = "lock-discipline"
    description = (
        "in service/, parallel/, checkpoint/: fields guarded by a lock "
        "at most access sites must be guarded at every site, including "
        "through private helper calls"
    )

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        index = ProjectIndex(project)
        for info in sorted(
            index.classes.values(), key=lambda c: (c.module.rel, c.name)
        ):
            if info.module.package not in SCOPE_PACKAGES:
                continue
            yield from self._check_class(index, info)

    # ------------------------------------------------------------------
    def _check_class(
        self, index: ProjectIndex, info: ClassInfo
    ) -> Iterable[Diagnostic]:
        flows: dict[str, _MethodFlow] = {}
        for name, fn in sorted(info.methods.items()):
            if name == "__init__":
                continue
            flow = _MethodFlow(fn, index, index.local_types(fn))
            flow.run(fn.node, _HeldState())
            flows[name] = flow

        entry = self._entry_held(flows)

        # Per attribute: unique access sites (one per line) with the
        # effective held set (method-body locks + inherited entry locks).
        sites: dict[str, dict[int, tuple[_Access, frozenset[str]]]] = (
            defaultdict(dict)
        )
        wrote: set[str] = set()
        for name, flow in flows.items():
            inherited = entry.get(name, frozenset())
            for access in flow.accesses:
                if access.attr in info.locks:
                    continue
                if access.is_write:
                    wrote.add(access.attr)
                effective = access.held | inherited
                line = access.node.lineno
                prev = sites[access.attr].get(line)
                if prev is None:
                    sites[access.attr][line] = (access, effective)
                else:
                    # Same line twice (e.g. augmented assign): the site
                    # counts as guarded only if every access on it is.
                    old_access, old_held = prev
                    sites[access.attr][line] = (
                        old_access if old_access.is_write else access,
                        old_held & effective,
                    )

        for attr in sorted(sites):
            if attr not in wrote:
                continue  # set in __init__, read-only after: no guard
            yield from self._check_attr(info, attr, sites[attr])

    def _entry_held(
        self, flows: dict[str, _MethodFlow]
    ) -> dict[str, frozenset[str]]:
        """Locks a private method can assume held on entry: the
        intersection over its intra-class call sites, to fixed point."""
        call_sites: dict[str, list[tuple[str, frozenset[str]]]] = (
            defaultdict(list)
        )
        for caller, flow in flows.items():
            for callee, held in flow.calls:
                if callee in flows and _is_private(callee):
                    call_sites[callee].append((caller, held))
        entry: dict[str, frozenset[str]] = {
            name: frozenset() for name in flows
        }
        for _ in range(len(flows) + 1):
            changed = False
            for callee, callers in call_sites.items():
                held_sets = [
                    held | entry[caller] for caller, held in callers
                ]
                new = frozenset.intersection(*held_sets)
                if new != entry[callee]:
                    entry[callee] = new
                    changed = True
            if not changed:
                break
        return entry

    def _check_attr(
        self,
        info: ClassInfo,
        attr: str,
        by_line: dict[int, tuple[_Access, frozenset[str]]],
    ) -> Iterable[Diagnostic]:
        candidates: set[str] = set()
        for _, held in by_line.values():
            candidates.update(held)
        total = len(by_line)
        best: tuple[int, str] | None = None
        for lock in sorted(candidates):
            guarded = sum(
                1 for _, held in by_line.values() if lock in held
            )
            if best is None or guarded > best[0]:
                best = (guarded, lock)
        if best is None:
            return
        guarded, lock = best
        if guarded < _MIN_GUARDED_SITES or guarded <= total - guarded:
            return
        example = min(
            line
            for line, (_, held) in by_line.items()
            if lock in held
        )
        hint = (
            f"with self.{lock.split('.', 1)[1]}:"
            if lock.startswith(f"{info.name}.")
            else f"with {lock}:"
        )
        for line in sorted(by_line):
            access, held = by_line[line]
            if lock in held:
                continue
            kind = "write" if access.is_write else "read"
            yield self.diag(
                info.module,
                access.node,
                f"unguarded {kind} of {info.name}.{attr}: {lock} guards "
                f"it at {guarded}/{total} access sites (e.g. "
                f"{info.module.rel}:{example}); hold '{hint}' here too, "
                f"or justify with a suppression comment",
            )
