"""RP007 — liveness safety in the service package.

The matching service multiplexes every client onto one scheduler and
one dispatch thread; a worker parked on a wait that can never end
wedges shutdown for all of them.  The rule bans **un-timed queue
``get()`` / ``join()``** in ``service/``: a ``.get()`` or ``.join()``
without a ``timeout=`` on a queue-named receiver blocks forever when
the producer died; shutdown then hangs on a thread that can never
observe the stop flag.  Every queue wait must carry a timeout and
re-check for shutdown.

Queue-named receivers are recognised by name: any component of the
receiver's dotted chain containing ``queue``.

The other half this rule used to carry — ``time.sleep`` while holding
a lock — is superseded by RP010, which tracks the held-lock set
through dataflow and the call graph instead of matching ``with``
blocks syntactically, and covers the full blocking-call catalog
(sleep, socket I/O, pool shutdown, un-timed waits).
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Checker, attribute_chain, call_keywords
from ..diagnostics import Diagnostic
from ..engine import SourceModule
from ..registry import register

SCOPE = "service"

UNTIMED_WAITERS = frozenset({"get", "join"})


def _is_queueish(chain: tuple[str, ...]) -> bool:
    return any("queue" in part.lower() for part in chain)


@register
class ServiceSafetyChecker(Checker):
    rule = "RP007"
    name = "service-liveness-safety"
    description = (
        "service/ must stay responsive: every queue get()/join() "
        "carries a timeout"
    )

    def check_module(self, module: SourceModule) -> Iterable[Diagnostic]:
        if module.package != SCOPE:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                yield from self._check_untimed_wait(module, node)

    # ------------------------------------------------------------------
    def _check_untimed_wait(
        self, module: SourceModule, node: ast.Call
    ) -> Iterator[Diagnostic]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in UNTIMED_WAITERS:
            return
        receiver = attribute_chain(func.value)
        if receiver is None or not _is_queueish(receiver):
            return
        if "timeout" in call_keywords(node):
            return
        yield self.diag(
            module,
            node,
            f"un-timed .{func.attr}() on {'.'.join(receiver)} blocks "
            f"forever if the producer died; pass timeout= and re-check "
            f"for shutdown",
        )
