"""RP007 — liveness safety in the service package.

The matching service multiplexes every client onto one scheduler and
one dispatch thread; a single blocked holder stalls all of them.  Two
patterns defeat that liveness and are banned in ``service/``:

* ``time.sleep(...)`` **while holding a lock** — sleeping inside a
  ``with <something lock-like>:`` block turns a pacing delay into a
  global stall: every submitter and the dispatch loop queue up behind
  the sleeper.  Waiting must go through ``Condition.wait`` /
  ``Event.wait`` (which release or never take the lock) so waiters can
  be woken early.
* **un-timed queue ``get()`` / ``join()``** — a ``.get()`` or
  ``.join()`` without a ``timeout=`` on a queue-named receiver blocks
  forever when the producer died; shutdown then hangs on a thread that
  can never observe the stop flag.  Every queue wait must carry a
  timeout and re-check for shutdown.

Lock-like context managers are recognised by name: any component of the
``with`` expression's dotted chain containing ``lock`` or ``cond``
(``self._lock``, ``registry.lock()``, ``self._cond``).  Queue-named
receivers likewise: any chain component containing ``queue``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from ..base import Checker, attribute_chain, call_keywords, import_aliases
from ..diagnostics import Diagnostic
from ..engine import SourceModule
from ..registry import register

SCOPE = "service"

LOCKISH = ("lock", "cond")

UNTIMED_WAITERS = frozenset({"get", "join"})


def _chain_of(node: ast.expr) -> tuple[str, ...] | None:
    """Dotted chain of an expression, looking through calls
    (``registry.lock()`` -> ``("registry", "lock")``)."""
    if isinstance(node, ast.Call):
        node = node.func
    return attribute_chain(node)


def _is_lockish(node: ast.expr) -> bool:
    chain = _chain_of(node)
    return chain is not None and any(
        key in part.lower() for part in chain for key in LOCKISH
    )


def _is_queueish(chain: tuple[str, ...]) -> bool:
    return any("queue" in part.lower() for part in chain)


@register
class ServiceSafetyChecker(Checker):
    rule = "RP007"
    name = "service-liveness-safety"
    description = (
        "service/ must stay responsive: no time.sleep while holding a "
        "lock, and every queue get()/join() carries a timeout"
    )

    def check_module(self, module: SourceModule) -> Iterable[Diagnostic]:
        if module.package != SCOPE:
            return
        aliases = import_aliases(module.tree)
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                yield from self._check_with(module, node, aliases, seen)
            elif isinstance(node, ast.Call):
                yield from self._check_untimed_wait(module, node)

    # ------------------------------------------------------------------
    def _is_time_sleep(
        self, node: ast.Call, aliases: dict[str, str]
    ) -> bool:
        chain = attribute_chain(node.func)
        if chain is None:
            return False
        if len(chain) == 1:
            # ``from time import sleep`` (possibly aliased).
            return aliases.get(chain[0], "") == "time.sleep"
        # ``import time [as t]; t.sleep(...)``.
        return chain[-1] == "sleep" and aliases.get(chain[0], "") == "time"

    def _check_with(
        self,
        module: SourceModule,
        node: ast.With | ast.AsyncWith,
        aliases: dict[str, str],
        seen: set[tuple[int, int]],
    ) -> Iterator[Diagnostic]:
        if not any(_is_lockish(item.context_expr) for item in node.items):
            return
        for stmt in node.body:
            for inner in ast.walk(stmt):
                if not isinstance(inner, ast.Call):
                    continue
                if not self._is_time_sleep(inner, aliases):
                    continue
                site = (inner.lineno, inner.col_offset)
                if site in seen:
                    continue  # nested lock blocks report once
                seen.add(site)
                yield self.diag(
                    module,
                    inner,
                    "time.sleep() while holding a lock stalls every "
                    "other service thread; wait on a Condition/Event "
                    "(which releases the lock) instead",
                )

    def _check_untimed_wait(
        self, module: SourceModule, node: ast.Call
    ) -> Iterator[Diagnostic]:
        func = node.func
        if not isinstance(func, ast.Attribute):
            return
        if func.attr not in UNTIMED_WAITERS:
            return
        receiver = attribute_chain(func.value)
        if receiver is None or not _is_queueish(receiver):
            return
        if "timeout" in call_keywords(node):
            return
        yield self.diag(
            module,
            node,
            f"un-timed .{func.attr}() on {'.'.join(receiver)} blocks "
            f"forever if the producer died; pass timeout= and re-check "
            f"for shutdown",
        )
