"""RP005 — config drift.

``CuTSConfig`` is the single tunables surface: every experiment,
benchmark, and CLI run goes through it.  Drift shows up two ways, and
both have bitten engines like this one silently: a field nobody reads
(so "tuning" it is a no-op and ablations lie), or a CLI flag that parses
but never reaches a field (so the flag is theater).  This rule closes
the loop statically.

Flagged:

* a ``CuTSConfig`` field never referenced (attribute access or keyword
  argument) outside ``core/config.py``;
* an ``argparse`` flag whose destination is never read back off the
  parsed namespace in the CLI module;
* a ``CuTSConfig(...)`` call passing a keyword that names no field.
"""

from __future__ import annotations

import ast
from typing import Iterable

from ..base import Checker, call_keywords
from ..diagnostics import Diagnostic
from ..engine import Project, SourceModule
from ..registry import register

CONFIG_CLASS = "CuTSConfig"


def _config_fields(module: SourceModule) -> dict[str, int] | None:
    """Annotated fields of the config dataclass (name -> line)."""
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ClassDef) and node.name == CONFIG_CLASS:
            fields: dict[str, int] = {}
            for stmt in node.body:
                if isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    fields[stmt.target.id] = stmt.lineno
            return fields
    return None


def _referenced_names(module: SourceModule) -> set[str]:
    """Attribute and keyword-argument names used in a module."""
    names: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute):
            names.add(node.attr)
        elif isinstance(node, ast.keyword) and node.arg is not None:
            names.add(node.arg)
    return names


def _argparse_dests(module: SourceModule) -> dict[str, ast.Call]:
    """Namespace destinations declared by ``add_argument`` calls."""
    dests: dict[str, ast.Call] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute) or func.attr != "add_argument":
            continue
        kw = call_keywords(node)
        dest = kw.get("dest")
        if isinstance(dest, ast.Constant) and isinstance(dest.value, str):
            dests[dest.value] = node
            continue
        for arg in node.args:
            if not isinstance(arg, ast.Constant) or not isinstance(
                arg.value, str
            ):
                continue
            name = arg.value
            if name.startswith("--"):
                dests[name[2:].replace("-", "_")] = node
                break
            if not name.startswith("-"):
                dests[name] = node
                break
    return dests


def _namespace_reads(module: SourceModule) -> set[str]:
    """Attributes read off any name bound to a parsed namespace.

    Conservative: every ``<name>.<attr>`` where ``<name>`` is a plain
    variable counts, so passing ``args`` through helpers in the same
    module is recognized.
    """
    reads: set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            reads.add(node.attr)
    return reads


@register
class ConfigDriftChecker(Checker):
    rule = "RP005"
    name = "config-drift"
    description = (
        "every CuTSConfig field is read somewhere real, every CLI flag "
        "reaches a live destination, no unknown config kwargs"
    )

    def check_project(self, project: Project) -> Iterable[Diagnostic]:
        config_module = project.find("core/config.py")
        if config_module is None:
            return
        fields = _config_fields(config_module)
        if fields is None:
            return

        used: set[str] = set()
        for module in project.modules:
            if module is config_module:
                continue
            used |= _referenced_names(module)
        for name, line in sorted(fields.items()):
            if name not in used:
                yield Diagnostic(
                    path=config_module.rel,
                    line=line,
                    col=1,
                    rule=self.rule,
                    message=(
                        f"CuTSConfig.{name} is dead: no module outside "
                        f"config.py reads or sets it"
                    ),
                )

        yield from self._check_unknown_kwargs(project, set(fields))

        cli_module = project.find("cli.py")
        if cli_module is not None:
            yield from self._check_cli(cli_module)

    # ------------------------------------------------------------------
    def _check_unknown_kwargs(
        self, project: Project, fields: set[str]
    ) -> Iterable[Diagnostic]:
        for module in project.modules:
            for node in ast.walk(module.tree):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                callee = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if callee != CONFIG_CLASS:
                    continue
                for kw in node.keywords:
                    if kw.arg is not None and kw.arg not in fields:
                        yield self.diag(
                            module,
                            kw.value,
                            f"unknown CuTSConfig kwarg '{kw.arg}': flag "
                            f"or call site drifted from the config schema",
                        )

    def _check_cli(self, cli: SourceModule) -> Iterable[Diagnostic]:
        reads = _namespace_reads(cli)
        for dest, node in sorted(_argparse_dests(cli).items()):
            if dest not in reads:
                yield self.diag(
                    cli,
                    node,
                    f"CLI flag with dest '{dest}' is parsed but never "
                    f"read: it maps to no live config field or action",
                )
