"""The analysis engine: collect modules, run checkers, apply
suppressions and the baseline.

Scope resolution: a module's *logical* path is its path relative to the
last ``repro`` directory on the way down from the analysis root (or
relative to the root itself when no ``repro`` component exists).  Rules
that only apply inside certain packages (``core/``, ``storage/``, ...)
test the first logical component, so fixture trees under
``tests/analysis_fixtures/repro/`` scope exactly like the real source.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path

from .baseline import Baseline
from .diagnostics import Diagnostic, Severity
from .registry import all_checkers

__all__ = ["SourceModule", "Project", "AnalysisReport", "Analyzer"]

_PARSE_RULE = "RP000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore(?:\[(?P<rules>[A-Z0-9_,\s]+)\])?"
)

_ALL_RULES = "*"


def _parse_suppressions(lines: list[str]) -> dict[int, set[str]]:
    """Map line number -> suppressed rule codes (``*`` = every rule).

    A suppression comment covers its own line; a comment standing alone
    on a line covers the next line instead (for lines too long to carry
    a trailing comment).
    """
    out: dict[int, set[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        m = _SUPPRESS_RE.search(text)
        if not m:
            continue
        rules = m.group("rules")
        codes = (
            {code.strip() for code in rules.split(",") if code.strip()}
            if rules
            else {_ALL_RULES}
        )
        target = lineno
        if text.lstrip().startswith("#"):
            target = lineno + 1
        out.setdefault(target, set()).update(codes)
    return out


@dataclass
class SourceModule:
    """One parsed source file plus the metadata checkers need."""

    path: Path
    rel: str
    source: str
    tree: ast.Module
    suppressions: dict[int, set[str]] = field(default_factory=dict)

    @property
    def logical_parts(self) -> tuple[str, ...]:
        parts = Path(self.rel).parts
        if "repro" in parts:
            idx = len(parts) - 1 - parts[::-1].index("repro")
            return parts[idx + 1 :]
        return parts

    @property
    def package(self) -> str:
        """First logical path component (``core``, ``storage``, ...)."""
        parts = self.logical_parts
        return parts[0] if len(parts) > 1 else ""

    @property
    def filename(self) -> str:
        return Path(self.rel).name

    def logical_path(self) -> str:
        return "/".join(self.logical_parts)

    def suppressed(self, rule: str, line: int) -> bool:
        codes = self.suppressions.get(line)
        return codes is not None and (rule in codes or _ALL_RULES in codes)


@dataclass
class Project:
    """Every module of one analysis run, for cross-module checkers."""

    root: Path
    modules: list[SourceModule]

    def find(self, logical_suffix: str) -> SourceModule | None:
        """The module whose logical path ends with ``logical_suffix``."""
        for module in self.modules:
            if module.logical_path().endswith(logical_suffix):
                return module
        return None

    def by_rel(self) -> dict[str, SourceModule]:
        return {m.rel: m for m in self.modules}


@dataclass
class AnalysisReport:
    """Outcome of one run: active, suppressed, baselined, and stale."""

    root: Path
    checked_files: int
    active: list[Diagnostic]
    baselined: list[Diagnostic]
    stale_baseline: list[str]
    suppressed_count: int

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.active if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.active if d.severity is Severity.WARNING]

    def exit_code(self, *, strict: bool = False) -> int:
        if self.errors:
            return 1
        if strict and (self.warnings or self.stale_baseline):
            return 1
        return 0

    def to_json(self) -> dict[str, object]:
        return {
            "root": str(self.root),
            "checked_files": self.checked_files,
            "diagnostics": [d.to_json() for d in self.active],
            "baselined": [d.to_json() for d in self.baselined],
            "stale_baseline": list(self.stale_baseline),
            "suppressed": self.suppressed_count,
        }


class Analyzer:
    """Run every registered checker over a source tree."""

    def __init__(self, root: Path, checkers: list | None = None) -> None:
        self.root = Path(root)
        self.checkers = checkers if checkers is not None else all_checkers()

    # ------------------------------------------------------------------
    def collect(self) -> tuple[Project, list[Diagnostic]]:
        """Parse every ``*.py`` under the root; unparsable files become
        RP000 diagnostics instead of aborting the run."""
        modules: list[SourceModule] = []
        parse_errors: list[Diagnostic] = []
        if self.root.is_file():
            paths = [self.root]
            base = self.root.parent
        else:
            paths = sorted(self.root.rglob("*.py"))
            base = self.root
        for path in paths:
            if "__pycache__" in path.parts:
                continue
            rel = path.relative_to(base).as_posix()
            source = path.read_text()
            try:
                tree = ast.parse(source, filename=str(path))
            except SyntaxError as exc:
                line = exc.lineno or 1
                col = exc.offset or 1
                parse_errors.append(
                    Diagnostic(
                        path=rel,
                        line=line,
                        col=col,
                        rule=_PARSE_RULE,
                        message=(
                            f"syntax error: {exc.msg} "
                            f"(line {line}, offset {col})"
                        ),
                    )
                )
                continue
            modules.append(
                SourceModule(
                    path=path,
                    rel=rel,
                    source=source,
                    tree=tree,
                    suppressions=_parse_suppressions(source.splitlines()),
                )
            )
        return Project(root=self.root, modules=modules), parse_errors

    def run(self, baseline: Baseline | None = None) -> AnalysisReport:
        project, diagnostics = self.collect()
        for checker in self.checkers:
            for module in project.modules:
                diagnostics.extend(checker.check_module(module))
            diagnostics.extend(checker.check_project(project))

        by_rel = project.by_rel()
        kept: list[Diagnostic] = []
        suppressed = 0
        for diag in sorted(set(diagnostics)):
            module = by_rel.get(diag.path)
            if module is not None and module.suppressed(diag.rule, diag.line):
                suppressed += 1
                continue
            kept.append(diag)

        if baseline is None:
            active, baselined, stale = kept, [], []
        else:
            active, baselined, stale = baseline.split(kept)
        return AnalysisReport(
            root=self.root,
            checked_files=len(project.modules),
            active=active,
            baselined=baselined,
            stale_baseline=stale,
            suppressed_count=suppressed,
        )
