"""Opt-in runtime lock-order sanitizer (``REPRO_SANITIZE=1``).

RP010 proves properties of the *static* lock graph; this module is the
dynamic half of the cross-check.  Production code creates its locks
through the factories here::

    self._lock = make_lock("Scheduler._lock")

With ``REPRO_SANITIZE`` unset the factories return the plain
``threading`` primitives — zero overhead, nothing imported beyond this
module.  With ``REPRO_SANITIZE=1`` they return instrumented wrappers
that record, per thread, the stack of held locks and every *acquisition
order edge* (lock B acquired while A is held).  The canonical names
match the static rule's ``Class._attr`` lock ids, so the two graphs
diff line-for-line:

* a **runtime inversion** — edge ``(B, A)`` observed after ``(A, B)``
  — is a deadlock the scheduler just happened not to hit; the test
  session fails (see ``tests/conftest.py``).
* a **static edge never exercised** is *dead discipline*: ordering
  code paths the suite never drives, reported so either a test or the
  nesting gets removed.

The wrappers also record *contended-while-held* events (an acquisition
that had to wait while the thread already held another lock) — the
runtime shadow of RP010's blocking-while-held rule — reported for
diagnosis but not failed on, since contention is timing-dependent.

``make_condition`` wraps an instrumented RLock in a
``threading.Condition``; the wrapper forwards ``_release_save`` /
``_acquire_restore`` / ``_is_owned`` (with bookkeeping) so
``Condition.wait`` fully releases and correctly re-acquires it.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Any

__all__ = [
    "enabled",
    "make_lock",
    "make_rlock",
    "make_condition",
    "registry",
    "SanitizerRegistry",
]

_ENV = "REPRO_SANITIZE"


def enabled() -> bool:
    return os.environ.get(_ENV, "") == "1"


@dataclass(frozen=True)
class OrderEdge:
    """Observed: ``acquired`` taken while ``held`` was held."""

    held: str
    acquired: str


@dataclass(frozen=True)
class Inversion:
    """Both orders of one lock pair were observed at runtime."""

    first: OrderEdge
    second: OrderEdge
    thread: str


@dataclass
class SanitizerRegistry:
    """Global record of everything the instrumented locks observed."""

    edges: dict[OrderEdge, int] = field(default_factory=dict)
    inversions: list[Inversion] = field(default_factory=list)
    contended_while_held: dict[tuple[str, str], int] = field(
        default_factory=dict
    )
    _guard: threading.Lock = field(default_factory=threading.Lock)
    _local: threading.local = field(default_factory=threading.local)

    # -- per-thread held stack ------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def held_names(self) -> tuple[str, ...]:
        return tuple(self._stack())

    # -- recording ------------------------------------------------------
    def record_acquired(self, name: str) -> None:
        stack = self._stack()
        if name in stack:  # reentrant re-acquire: no new edges
            stack.append(name)
            return
        with self._guard:
            for held in set(stack):
                if held == name:
                    continue
                edge = OrderEdge(held=held, acquired=name)
                self.edges[edge] = self.edges.get(edge, 0) + 1
                reverse = OrderEdge(held=name, acquired=held)
                if reverse in self.edges:
                    self.inversions.append(
                        Inversion(
                            first=reverse,
                            second=edge,
                            thread=threading.current_thread().name,
                        )
                    )
        stack.append(name)

    def record_released(self, name: str) -> None:
        stack = self._stack()
        for i in range(len(stack) - 1, -1, -1):
            if stack[i] == name:
                del stack[i]
                return

    def record_contended(self, name: str) -> None:
        stack = self._stack()
        if not stack or stack == [name]:
            return
        with self._guard:
            for held in set(stack):
                if held == name:
                    continue
                key = (held, name)
                self.contended_while_held[key] = (
                    self.contended_while_held.get(key, 0) + 1
                )

    # -- reporting ------------------------------------------------------
    def report(self) -> dict[str, Any]:
        with self._guard:
            return {
                "edges": sorted(
                    (e.held, e.acquired, count)
                    for e, count in self.edges.items()
                ),
                "inversions": [
                    {
                        "pair": sorted(
                            (inv.first.held, inv.first.acquired)
                        ),
                        "first": (inv.first.held, inv.first.acquired),
                        "second": (inv.second.held, inv.second.acquired),
                        "thread": inv.thread,
                    }
                    for inv in self.inversions
                ],
                "contended_while_held": sorted(
                    (held, acquired, count)
                    for (held, acquired), count in
                    self.contended_while_held.items()
                ),
            }

    def unexercised(
        self, static_edges: dict[tuple[str, str], tuple[str, int]]
    ) -> list[tuple[str, str, str]]:
        """Static order edges the run never observed (dead discipline).

        Anonymous static ids (``path:expr``) have no runtime
        counterpart and are skipped.
        """
        with self._guard:
            seen = {(e.held, e.acquired) for e in self.edges}
        out = []
        for (held, acquired), (rel, line) in sorted(static_edges.items()):
            if ":" in held or ":" in acquired:
                continue
            if (held, acquired) not in seen:
                out.append((held, acquired, f"{rel}:{line}"))
        return out

    def reset(self) -> None:
        with self._guard:
            self.edges.clear()
            self.inversions.clear()
            self.contended_while_held.clear()


_REGISTRY = SanitizerRegistry()


def registry() -> SanitizerRegistry:
    return _REGISTRY


class _InstrumentedLock:
    """Bookkeeping proxy around ``threading.Lock``/``RLock``."""

    def __init__(self, name: str, inner: Any,
                 reg: SanitizerRegistry) -> None:
        self.name = name
        self._inner = inner
        self._reg = reg

    # -- lock protocol --------------------------------------------------
    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        if blocking:
            # A failed fast-path acquire means we are about to wait
            # while (possibly) holding other locks.
            if not self._inner.acquire(False):
                self._reg.record_contended(self.name)
                if not self._inner.acquire(True, timeout):
                    return False
        else:
            if not self._inner.acquire(False):
                return False
        self._reg.record_acquired(self.name)
        return True

    def release(self) -> None:
        self._reg.record_released(self.name)
        self._inner.release()

    def locked(self) -> bool:
        return self._inner.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<sanitized {self._inner!r} name={self.name!r}>"

    # -- Condition integration (RLock inner only) -----------------------
    # Forwarding these three lets threading.Condition fully release the
    # lock in wait() and re-acquire it afterwards, with our bookkeeping.
    def _release_save(self) -> object:
        state = self._inner._release_save()
        self._reg.record_released(self.name)
        return state

    def _acquire_restore(self, state: object) -> None:
        self._inner._acquire_restore(state)
        self._reg.record_acquired(self.name)

    def _is_owned(self) -> bool:
        return self._inner._is_owned()


def make_lock(name: str) -> Any:
    """A ``threading.Lock``, instrumented under ``REPRO_SANITIZE=1``."""
    if not enabled():
        return threading.Lock()
    return _InstrumentedLock(name, threading.Lock(), _REGISTRY)


def make_rlock(name: str) -> Any:
    """A ``threading.RLock``, instrumented under ``REPRO_SANITIZE=1``."""
    if not enabled():
        return threading.RLock()
    return _InstrumentedLock(name, threading.RLock(), _REGISTRY)


def make_condition(name: str) -> threading.Condition:
    """A ``threading.Condition`` whose lock carries the sanitizer."""
    if not enabled():
        return threading.Condition()
    return threading.Condition(
        _InstrumentedLock(name, threading.RLock(), _REGISTRY)
    )
