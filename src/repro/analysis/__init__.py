"""Project-invariant static analysis for the cuTS reproduction.

The engine parses every module under ``src/`` into ASTs and runs
repo-specific checkers encoding invariants the compiler never sees:
one-writer trie discipline, exact-count determinism, CSR dtype hygiene,
protocol totality, and config/CLI drift.  See ``DESIGN.md`` §9 for the
architecture and the rule catalog.

Quickstart::

    python -m repro.analysis            # analyze src/, human output
    python -m repro.analysis --strict   # CI gate: nonzero on any finding
    python -m repro.analysis --json     # machine-readable diagnostics

Per-line suppression: append ``# repro: ignore[RP002]`` (or a bare
``# repro: ignore`` to silence every rule) to the offending line, or put
the comment alone on the line above it.  Pre-existing debt lives in a
committed baseline file (``--baseline``); new code never adds to it.
"""

from __future__ import annotations

from .baseline import Baseline
from .diagnostics import Diagnostic, Severity
from .engine import AnalysisReport, Analyzer, Project, SourceModule
from .registry import all_checkers, register

__all__ = [
    "AnalysisReport",
    "Analyzer",
    "Baseline",
    "Diagnostic",
    "Project",
    "Severity",
    "SourceModule",
    "all_checkers",
    "register",
]
