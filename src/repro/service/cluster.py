"""Replicated, shard-routed serving: the matching service on N ranks.

The single-process :class:`~repro.service.MatchingService` owns every
graph, so one crash takes the whole registry down.  This module runs
**N replicas** of it behind a router so capacity and fault domains grow
by adding ranks — the serving-side form of the paper's multi-GPU
scale-out, built from the same reliability pieces as the distributed
runtime (DESIGN.md §15):

* :class:`HashRing` — a consistent-hash ring over the live ranks maps
  each graph fingerprint to ``replication`` distinct replicas.  The
  ring is a pure function of the sorted live-member set (SHA-256 over
  rank/vnode labels), so every membership change rebuilds it
  deterministically: two routers that agree on membership agree on
  placement.
* :class:`ClusterRank` — one replica: a ``MatchingService`` over its
  own durable state dir.  A crash is *abrupt abandonment*
  (:meth:`MatchingService.kill` — pool workers SIGKILLed, nothing
  settles, nothing flushes); a restart builds a fresh incarnation over
  the same state dir, replaying the durable job journal.
* :class:`ClusterService` — the router.  ``/match`` goes to the
  primary replica by graph affinity and **fails over** to a secondary
  on rank crash, partition, or route timeout.  Every attempt carries a
  sequence number in a :class:`~repro.distributed.protocol.
  ShipmentTracker` (PR 1's envelope bookkeeping): a timed-out or
  crashed attempt is *revoked* before the failover is dispatched, so a
  late answer from the old replica is never integrated, and the same
  idempotency key rides every attempt, so a replica that did execute
  before dying answers the retry from its journal instead of running
  again — together, exactly-once integration.

**Split queries** reuse the engine's ``part=/num_parts=`` striding:
``num_parts > 1`` fans one query out as strided part-requests across
the shard's replicas, tracked in a
:class:`~repro.distributed.protocol.StrideLedger` keyed
``(0, part, part + 1)``.  A replica crash mid-split invalidates only
that rank's uncommitted parts (``begin_recovery`` → ``adopt``);
committed parts keep their counts, so the query *resumes* on the
survivors instead of restarting.  Part counts sum exactly because the
root stride sets partition.

**Degradation and healing**: a shard with fewer than a majority of its
replicas reachable is below quorum; the router sheds those requests
through the scheduler's rejection machinery (reason
``shard-unavailable``, HTTP 503 + ``Retry-After``) instead of queueing
doomed work.  A supervisor thread restarts a crashed rank after
``service_heal_after_ticks`` ticks and re-admits it to the ring **only
after** it has caught up — re-registered every shard it will serve —
from the router's content-addressed graph store; the ring rebuild then
returns the shard to full R-way replication.

Fault injection is end-to-end: the same ``--faults`` spec that drives
the single service adds ``rank_crash_prob`` / ``partition_prob`` /
``slow_replica_prob`` here, consulted once per routed attempt, and
``scripts/cluster_chaos.py`` gates the whole loop against the serial
oracle.
"""

from __future__ import annotations

import bisect
import hashlib
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..analysis.sanitizer import make_lock
from ..core.config import CuTSConfig
from ..core.result import MatchResult
from ..core.stats import SearchStats
from ..distributed.protocol import ShipmentTracker, StrideLedger
from ..fingerprint import graph_fingerprint
from ..gpusim.cost import CostModel
from ..graph.csr import CSRGraph
from .dispatcher import payload_from_result
from .faults import ServiceFaultInjector, ServiceFaultPlan
from .scheduler import AdmissionError, Scheduler
from .service import (
    CANCELLED,
    DONE,
    EXPIRED,
    FAILED,
    PENDING,
    RUNNING,
    JobFailed,
    MatchingService,
)

__all__ = [
    "ClusterJob",
    "ClusterRank",
    "ClusterService",
    "HashRing",
    "RankUnavailable",
]

# Rank lifecycle states.
LIVE = "live"
CRASHED = "crashed"
RECOVERING = "recovering"

# Protocol phases at which the router hands control to a test hook.
PHASES = ("pre-dispatch", "mid-shard", "post-commit-pre-reply")


class RankUnavailable(RuntimeError):
    """One routed attempt failed (crash/partition/timeout); the router
    revokes the attempt and fails over to the next replica."""

    def __init__(self, rank_id: int, message: str) -> None:
        super().__init__(message)
        self.rank_id = rank_id


def _ring_hash(label: str) -> int:
    return int.from_bytes(
        hashlib.sha256(label.encode("utf-8")).digest()[:8], "big"
    )


class HashRing:
    """Deterministic consistent-hash ring with virtual nodes.

    The layout is a pure function of the member set: every member
    contributes ``vnodes`` points hashed from ``rank-<id>-vnode-<k>``,
    sorted once.  Rebuilding with the same members yields the same
    ring, so routers (and restarted routers) agree on placement
    without coordination.
    """

    def __init__(self, members: Iterable[int], *, vnodes: int = 64) -> None:
        if vnodes < 1:
            raise ValueError("vnodes must be >= 1")
        self.vnodes = vnodes
        self.members = tuple(sorted(set(members)))
        points = [
            (_ring_hash(f"rank-{rank}-vnode-{v}"), rank)
            for rank in self.members
            for v in range(vnodes)
        ]
        points.sort()
        self._points = points
        self._hashes = [h for h, _ in points]

    def replicas_for(self, key: str, count: int) -> list[int]:
        """The first ``count`` distinct members clockwise from
        ``key``'s position — the shard's replica set, primary first."""
        if not self.members:
            return []
        count = min(count, len(self.members))
        start = bisect.bisect_right(self._hashes, _ring_hash(key))
        out: list[int] = []
        total = len(self._points)
        for step in range(total):
            rank = self._points[(start + step) % total][1]
            if rank not in out:
                out.append(rank)
                if len(out) == count:
                    break
        return out

    def primary_for(self, key: str) -> int:
        replicas = self.replicas_for(key, 1)
        if not replicas:
            raise LookupError("hash ring has no members")
        return replicas[0]


class ClusterRank:
    """One replica: a :class:`MatchingService` plus liveness state.

    The lifecycle is ``live -> crashed -> recovering -> live``.  A
    crash abandons the running incarnation exactly as ``kill -9``
    would (see :meth:`MatchingService.kill`); recovery builds a fresh
    incarnation over the same durable state dir, so the job journal
    and graph store written before the crash are replayed, not lost.
    """

    def __init__(
        self,
        rank_id: int,
        config: CuTSConfig,
        *,
        workers: int | str | None = 1,
        state_dir: str | None = None,
        faults: ServiceFaultPlan | None = None,
    ) -> None:
        self.rank_id = rank_id
        self.config = config
        self.workers = workers
        self.state_dir = state_dir
        self.faults = faults
        self.state = LIVE
        self.generation = 0
        self.crashes = 0
        self.service = MatchingService(
            config, workers=workers, state_dir=state_dir, faults=faults
        )

    def crash(self) -> None:
        """SIGKILL this replica: mark it dead first (routes start
        failing immediately), then kill the service abruptly."""
        if self.state == CRASHED:
            return
        self.state = CRASHED
        self.crashes += 1
        self.service.kill()

    def begin_recovery(self) -> None:
        """Boot a fresh incarnation over the durable state dir.  The
        rank stays out of the ring (``recovering``) until the router
        has finished catch-up and calls :meth:`admit`."""
        old = self.service
        self.state = RECOVERING
        self.service = MatchingService(
            self.config, workers=self.workers,
            state_dir=self.state_dir, faults=self.faults,
        )
        self.generation += 1
        old.close()

    def admit(self) -> None:
        self.state = LIVE

    def snapshot(self) -> dict[str, object]:
        return {
            "rank": self.rank_id,
            "state": self.state,
            "generation": self.generation,
            "crashes": self.crashes,
            "graphs": len(self.service.registry.handles()),
        }


@dataclass
class ClusterJob:
    """One routed request's lifecycle, visible to clients."""

    id: str
    graph_fp: str
    query: CSRGraph
    query_fp: str
    materialize: bool = False
    time_limit_ms: float | None = None
    deadline_ms: float | None = None
    priority: int = 0
    num_parts: int = 1
    idempotency_key: str | None = None
    state: str = PENDING
    result: MatchResult | None = None
    error: str | None = None
    reason: str | None = None
    retry_after: float | None = None
    replica: int | None = None
    failovers: int = 0
    parts_recovered: int = 0
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event)

    def to_json(self) -> dict[str, object]:
        out: dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "graph": self.graph_fp,
            "query": self.query_fp,
            "priority": self.priority,
            "replica": self.replica,
            "failovers": self.failovers,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }
        if self.num_parts > 1:
            out["num_parts"] = self.num_parts
            out["parts_recovered"] = self.parts_recovered
        if self.idempotency_key is not None:
            out["idempotency_key"] = self.idempotency_key
        if self.reason is not None:
            out["reason"] = self.reason
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["result"] = payload_from_result(self.result)
            if self.result.matches is not None:
                out["matches"] = self.result.matches.tolist()
        return out


@dataclass
class _Attempt:
    """One routed attempt: where it went and its envelope sequence."""

    rank_id: int
    generation: int
    seq: int
    rank_job_id: str


class ClusterService:
    """Router over N replicated :class:`MatchingService` ranks.

    Duck-types the single-process service's surface (``submit`` /
    ``wait`` / ``result`` / ``match`` / ``register_graph`` /
    ``healthz`` / ``metrics`` / ``graphs`` / ``resolve_key`` /
    ``graph_info``), so the HTTP face serves either interchangeably.

    Parameters mirror :class:`MatchingService`; ``ranks`` and
    ``replication`` default from ``config.service_ranks`` /
    ``config.service_replication`` (replication clamped to the rank
    count).  ``state_dir`` gives each rank its own durable subdir
    (``rank-<i>``).  ``auto_heal=False`` disables the supervisor so
    tests can drive crash/restart phases by hand.
    """

    _SUPERVISE_POLL_S = 0.05
    _WAIT_POLL_S = 0.005

    def __init__(
        self,
        config: CuTSConfig | None = None,
        *,
        ranks: int | None = None,
        replication: int | None = None,
        workers: int | str | None = None,
        state_dir: str | None = None,
        faults: ServiceFaultPlan | ServiceFaultInjector | None = None,
        start: bool = True,
        auto_heal: bool = True,
    ) -> None:
        self.config = config or CuTSConfig()
        n = ranks if ranks is not None else self.config.service_ranks
        if n < 1:
            raise ValueError("a cluster needs at least one rank")
        r = (
            replication
            if replication is not None
            else self.config.service_replication
        )
        self.replication = max(1, min(r, n))
        self.quorum = self.replication // 2 + 1
        # The router keeps its own injector for topology fates (crash /
        # partition / slow); each rank's service gets the *plan*, so
        # engine-level faults keep firing inside the replicas too.
        rank_plan: ServiceFaultPlan | None = None
        if isinstance(faults, ServiceFaultPlan):
            rank_plan = faults
            faults = ServiceFaultInjector(faults)
        elif isinstance(faults, ServiceFaultInjector):
            rank_plan = faults.plan
        self.faults = faults
        self.auto_heal = auto_heal
        self.ranks: dict[int, ClusterRank] = {}
        for rank_id in range(n):
            sub = None
            if state_dir is not None:
                sub = f"{state_dir}/rank-{rank_id}"
            self.ranks[rank_id] = ClusterRank(
                rank_id, self.config,
                workers=1 if workers is None else workers,
                state_dir=sub,
                faults=rank_plan,
            )
        # _lock guards membership-derived state (ring, catalog, names,
        # partitions); _jobs_lock guards the job table; _tracker_lock
        # guards envelope bookkeeping.  They are never nested, and no
        # rank call or wait happens under any of them (RP010).
        self._lock = make_lock("ClusterService._lock")
        self._jobs_lock = make_lock("ClusterService._jobs_lock")
        self._tracker_lock = make_lock("ClusterService._tracker_lock")
        self._ring = HashRing(range(n))
        self._catalog: dict[str, tuple[CSRGraph, str]] = {}
        self._names: dict[str, str] = {}
        self._partitioned: dict[int, int] = {}
        self._tracker = ShipmentTracker()
        # The front door reuses the scheduler's rejection machinery so
        # shard-unavailable sheds are minted and counted the same way
        # degraded-mode rejections are.
        self._front = Scheduler(max_depth=self.config.service_queue_depth)
        self._jobs: dict[str, ClusterJob] = {}
        self._job_seq = 0
        self._idempotency: dict[str, str] = {}
        self.phase_hook: Callable[[str, int, str], None] | None = None
        self.routes = 0
        self.failovers = 0
        self.shed = 0
        self.revoked_replies = 0
        self.split_queries = 0
        self.recovered_parts = 0
        self.heals = 0
        self.heal_failures = 0
        self.catchup_graphs = 0
        self.last_heal_error: str | None = None
        self._heal_strikes: dict[int, int] = {}
        self._stop = threading.Event()
        self._supervisor: threading.Thread | None = None
        self.started_at = time.time()
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._supervisor is None or not self._supervisor.is_alive():
            self._stop.clear()
            self._supervisor = threading.Thread(
                target=self._supervise, name="cluster-supervisor",
                daemon=True,
            )
            self._supervisor.start()

    def close(self) -> None:
        self._stop.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=10.0)
            self._supervisor = None
        for rank in self.ranks.values():
            rank.service.close()

    def __enter__(self) -> "ClusterService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Membership / fault control
    # ------------------------------------------------------------------
    def _rebuild_ring(self) -> None:
        """Caller holds ``_lock``.  Deterministic: the ring is a pure
        function of the live-member set."""
        live = [
            rank_id
            for rank_id, rank in self.ranks.items()
            if rank.state == LIVE
        ]
        self._ring = HashRing(live, vnodes=self._ring.vnodes)

    def crash_rank(self, rank_id: int) -> None:
        """Kill one replica abruptly (chaos entry point: the in-process
        equivalent of SIGKILLing its process).  Routing continues; the
        shard's surviving replicas absorb its traffic."""
        rank = self.ranks[rank_id]
        rank.crash()
        with self._lock:
            self._partitioned.pop(rank_id, None)
            self._rebuild_ring()

    def partition_rank(self, rank_id: int, ticks: int) -> None:
        """Make one replica unreachable for ``ticks`` routed attempts
        without losing its state (a network partition, not a crash)."""
        with self._lock:
            self._partitioned[rank_id] = max(1, int(ticks))

    def restart_rank(self, rank_id: int) -> None:
        """Restart a crashed replica and re-admit it to the ring.

        Ordering is the whole point: the fresh incarnation first
        replays its own journal, then **catches up** — registers every
        graph whose prospective replica set includes it — from the
        router's content-addressed store, and only then rejoins the
        ring.  Traffic never reaches a replica that is still missing
        its shards.
        """
        rank = self.ranks[rank_id]
        if rank.state == LIVE:
            return
        rank.begin_recovery()
        with self._lock:
            live = [
                rid for rid, r in self.ranks.items() if r.state == LIVE
            ]
            prospective = HashRing(
                live + [rank_id], vnodes=self._ring.vnodes
            )
            needed = [
                (fp, graph, name)
                for fp, (graph, name) in self._catalog.items()
                if rank_id in prospective.replicas_for(fp, self.replication)
            ]
        for fp, graph, name in needed:
            if rank.service.registry.by_fingerprint(fp) is None:
                rank.service.register_graph(graph, name)
                self.catchup_graphs += 1
        with self._lock:
            rank.admit()
            self._partitioned.pop(rank_id, None)
            self._rebuild_ring()
        self.heals += 1

    def _supervise(self) -> None:
        """Heal loop: a rank that stays crashed for
        ``service_heal_after_ticks`` consecutive ticks is restarted
        and re-admitted once caught up."""
        while not self._stop.wait(self._SUPERVISE_POLL_S):
            if not self.auto_heal:
                continue
            for rank_id, rank in self.ranks.items():
                if rank.state != CRASHED:
                    self._heal_strikes[rank_id] = 0
                    continue
                strikes = self._heal_strikes.get(rank_id, 0) + 1
                self._heal_strikes[rank_id] = strikes
                if strikes < self.config.service_heal_after_ticks:
                    continue
                self._heal_strikes[rank_id] = 0
                try:
                    self.restart_rank(rank_id)
                except Exception as exc:
                    # A failed heal must not kill the supervisor; the
                    # next tick retries and the counter says it failed.
                    self.heal_failures += 1
                    self.last_heal_error = str(exc)

    # ------------------------------------------------------------------
    # Graph management
    # ------------------------------------------------------------------
    def register_graph(
        self, graph: CSRGraph, name: str | None = None
    ) -> str:
        """Register ``graph`` cluster-wide: store it content-addressed
        in the router catalog and on each of its shard's live replicas
        (each replica persists it durably when it has a state dir)."""
        fp = graph_fingerprint(graph)
        resolved = name or graph.name or fp[:12]
        with self._lock:
            self._catalog[fp] = (graph, resolved)
            self._names[resolved] = fp
            replicas = self._ring.replicas_for(fp, self.replication)
        for rank_id in replicas:
            rank = self.ranks[rank_id]
            if rank.state == LIVE:
                rank.service.register_graph(graph, resolved)
        return fp

    def resolve_key(self, key: str) -> str:
        """Fingerprint for a catalogued name or fingerprint."""
        with self._lock:
            if key in self._catalog:
                return key
            fp = self._names.get(key)
        if fp is None:
            raise KeyError(f"no registered graph named {key!r}")
        return fp

    def graph_info(self, key: str) -> dict[str, object]:
        fp = self.resolve_key(key)
        with self._lock:
            graph, name = self._catalog[fp]
            replicas = self._ring.replicas_for(fp, self.replication)
        live = [
            rank_id
            for rank_id in replicas
            if self.ranks[rank_id].state == LIVE
            and self.ranks[rank_id].service.registry.by_fingerprint(fp)
            is not None
        ]
        return {
            "name": name,
            "fingerprint": fp,
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
            "replicas": replicas,
            "live_replicas": live,
            "below_quorum": len(self._reachable_replicas(fp)) < self.quorum,
        }

    def graphs(self) -> list[dict[str, object]]:
        with self._lock:
            fps = list(self._catalog)
        return [self.graph_info(fp) for fp in fps]

    def replication_of(self, key: str) -> int:
        """How many live replicas currently hold this graph — the
        chaos harness's 'shard back at full replication' probe."""
        info = self.graph_info(key)
        return len(info["live_replicas"])  # type: ignore[arg-type]

    # ------------------------------------------------------------------
    # Submission / results
    # ------------------------------------------------------------------
    def submit(
        self,
        graph: CSRGraph | str,
        query: CSRGraph,
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
        materialize: bool = False,
        time_limit_ms: float | None = None,
        idempotency_key: str | None = None,
        num_parts: int = 1,
    ) -> str:
        """Route one match request; returns a cluster job id.

        Raises :class:`AdmissionError` with reason
        ``shard-unavailable`` (and a ``retry_after``) synchronously
        when the target shard is below quorum — shedding at the front
        door through the same rejection machinery the scheduler uses,
        instead of queueing work that cannot be served.
        """
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        if num_parts < 1:
            raise ValueError("num_parts must be >= 1")
        if num_parts > 1 and materialize:
            raise ValueError("split queries are count-only")
        if isinstance(graph, CSRGraph):
            fp = self.register_graph(graph)
        else:
            fp = self.resolve_key(graph)
        if idempotency_key is not None:
            with self._jobs_lock:
                known = self._idempotency.get(idempotency_key)
                if known is not None and known in self._jobs:
                    return known
        self._check_quorum(fp)
        with self._jobs_lock:
            self._job_seq += 1
            job_id = f"cjob-{self._job_seq:08d}"
            job = ClusterJob(
                id=job_id,
                graph_fp=fp,
                query=query,
                query_fp=graph_fingerprint(query),
                materialize=materialize,
                time_limit_ms=time_limit_ms,
                deadline_ms=deadline_ms,
                priority=priority,
                num_parts=num_parts,
                idempotency_key=idempotency_key,
            )
            self._jobs[job_id] = job
            if idempotency_key is not None:
                self._idempotency[idempotency_key] = job_id
        runner = threading.Thread(
            target=self._run_job, args=(job,),
            name=f"cluster-route-{job_id}", daemon=True,
        )
        runner.start()
        return job_id

    def job(self, job_id: str) -> ClusterJob:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"no job {job_id!r}")
        return job

    def wait(self, job_id: str, timeout: float | None = None) -> ClusterJob:
        job = self.job(job_id)
        job.done.wait(timeout=timeout)
        return job

    def result(
        self, job_id: str, timeout: float | None = None
    ) -> MatchResult:
        job = self.wait(job_id, timeout=timeout)
        if not job.done.is_set():
            raise TimeoutError(f"job {job_id} still {job.state}")
        if job.state == DONE and job.result is not None:
            return job.result
        if job.reason is not None:
            # A mid-request shed (e.g. the shard fell below quorum
            # while routing) surfaces with the same typed reason a
            # submit-time rejection carries.
            raise AdmissionError(
                job.reason,
                job.error or f"job {job_id} was rejected",
                retry_after=job.retry_after,
            )
        raise JobFailed(f"job {job_id} failed: {job.error}")

    def match(
        self,
        graph: CSRGraph | str,
        query: CSRGraph,
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
        materialize: bool = False,
        time_limit_ms: float | None = None,
        idempotency_key: str | None = None,
        num_parts: int = 1,
        timeout: float | None = None,
    ) -> MatchResult:
        """Submit and wait — the cluster equivalent of
        :meth:`MatchingService.match`."""
        job_id = self.submit(
            graph,
            query,
            priority=priority,
            deadline_ms=deadline_ms,
            materialize=materialize,
            time_limit_ms=time_limit_ms,
            idempotency_key=idempotency_key,
            num_parts=num_parts,
        )
        return self.result(job_id, timeout=timeout)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, object]:
        rank_states = {
            rank_id: rank.state for rank_id, rank in self.ranks.items()
        }
        with self._lock:
            fps = list(self._catalog)
        below = sum(
            1
            for fp in fps
            if len(self._reachable_replicas(fp)) < self.quorum
        )
        live = sum(1 for s in rank_states.values() if s == LIVE)
        return {
            "status": "ok" if below == 0 else "degraded",
            "degraded": below > 0,
            "uptime_s": time.time() - self.started_at,
            "ranks": rank_states,
            "live_ranks": live,
            "replication": self.replication,
            "quorum": self.quorum,
            "shards_below_quorum": below,
            "graphs": len(fps),
        }

    def metrics(self) -> dict[str, object]:
        with self._tracker_lock:
            tracker = {
                "seen": len(self._tracker.seen),
                "revoked": len(self._tracker.revoked),
                "retransmissions": self._tracker.retransmissions,
            }
        with self._lock:
            ring_members = list(self._ring.members)
            partitioned = dict(self._partitioned)
        out: dict[str, object] = {
            "uptime_s": time.time() - self.started_at,
            "replication": self.replication,
            "quorum": self.quorum,
            "router": {
                "routes": self.routes,
                "failovers": self.failovers,
                "shed": self.shed,
                "revoked_replies": self.revoked_replies,
                "split_queries": self.split_queries,
                "recovered_parts": self.recovered_parts,
                "heals": self.heals,
                "heal_failures": self.heal_failures,
                "catchup_graphs": self.catchup_graphs,
                "rejected": self._front.snapshot()["rejected"],
            },
            "ring": {"members": ring_members, "partitioned": partitioned},
            "tracker": tracker,
            "ranks": {
                rank_id: rank.snapshot()
                for rank_id, rank in self.ranks.items()
            },
        }
        if self.faults is not None:
            out["faults"] = self.faults.snapshot()
        return out

    # ------------------------------------------------------------------
    # Routing internals
    # ------------------------------------------------------------------
    def _phase(self, phase: str, rank_id: int, job_id: str) -> None:
        hook = self.phase_hook
        if hook is not None:
            hook(phase, rank_id, job_id)

    def _reachable_replicas(self, fp: str) -> list[int]:
        with self._lock:
            replicas = self._ring.replicas_for(fp, self.replication)
            return [
                rank_id
                for rank_id in replicas
                if self.ranks[rank_id].state == LIVE
                and rank_id not in self._partitioned
            ]

    def _tick_partitions(self) -> None:
        """One router tick: every active partition window shrinks by
        one routed attempt and heals at zero (state was never lost)."""
        with self._lock:
            healed = [
                rank_id
                for rank_id, left in self._partitioned.items()
                if left <= 1
            ]
            for rank_id in healed:
                del self._partitioned[rank_id]
            for rank_id in list(self._partitioned):
                self._partitioned[rank_id] -= 1

    def _check_quorum(self, fp: str) -> None:
        reachable = self._reachable_replicas(fp)
        if len(reachable) >= self.quorum:
            return
        self.shed += 1
        retry_after = max(
            1.0,
            self.config.service_heal_after_ticks * self._SUPERVISE_POLL_S,
        )
        raise self._front.reject(
            "shard-unavailable",
            f"shard for graph {fp[:12]} has {len(reachable)} of "
            f"{self.replication} replicas reachable (quorum "
            f"{self.quorum}); retry after recovery",
            retry_after=retry_after,
        )

    def _apply_route_fate(self, rank_id: int) -> float:
        """Consult the fault injector for this routed attempt; returns
        seconds to delay the dispatch (slow-replica fate)."""
        if self.faults is None:
            return 0.0
        fate, magnitude = self.faults.route_fate()
        if fate == "crash":
            self.crash_rank(rank_id)
        elif fate == "partition":
            self.partition_rank(rank_id, int(magnitude))
        elif fate == "slow":
            return magnitude
        return 0.0

    def _revoke(self, attempt: _Attempt) -> None:
        with self._tracker_lock:
            self._tracker.revoke(attempt.rank_id, attempt.seq)

    def _next_seq(self) -> int:
        with self._tracker_lock:
            return self._tracker.next_seq()

    def _dispatch_attempt(
        self,
        job: ClusterJob,
        rank_id: int,
        *,
        key: str,
        part: int,
        num_parts: int,
    ) -> _Attempt:
        """Submit one routed attempt to ``rank_id`` (asynchronously on
        the rank; the caller collects).  Raises :class:`RankUnavailable`
        when the replica cannot take it."""
        seq = self._next_seq()
        attempt = _Attempt(
            rank_id=rank_id,
            generation=self.ranks[rank_id].generation,
            seq=seq,
            rank_job_id="",
        )
        self.routes += 1
        self._phase("pre-dispatch", rank_id, job.id)
        delay = self._apply_route_fate(rank_id)
        self._tick_partitions()
        rank = self.ranks[rank_id]
        with self._lock:
            partitioned = rank_id in self._partitioned
        if rank.state != LIVE or partitioned:
            self._revoke(attempt)
            raise RankUnavailable(
                rank_id,
                f"rank {rank_id} is {rank.state}"
                + (" (partitioned)" if partitioned else ""),
            )
        if delay > 0.0:
            time.sleep(delay)
        try:
            if rank.service.registry.by_fingerprint(job.graph_fp) is None:
                # Lazy catch-up: this replica was remapped onto the
                # shard after a membership change and has not seen the
                # graph yet; feed it from the content-addressed store.
                with self._lock:
                    graph, name = self._catalog[job.graph_fp]
                rank.service.register_graph(graph, name)
                self.catchup_graphs += 1
            attempt.rank_job_id = rank.service.submit(
                job.graph_fp,
                job.query,
                priority=job.priority,
                deadline_ms=job.deadline_ms,
                materialize=job.materialize,
                time_limit_ms=job.time_limit_ms,
                idempotency_key=key,
                part=part,
                num_parts=num_parts,
            )
        except AdmissionError as exc:
            # A replica-local rejection (queue-full, degraded, a killed
            # incarnation's shutdown) is failover-eligible — another
            # replica may well take the work.  The cause is kept so the
            # router can surface the admission reason when *every*
            # replica rejected.
            self._revoke(attempt)
            raise RankUnavailable(
                rank_id,
                f"rank {rank_id} rejected admission ({exc.reason}): {exc}",
            ) from exc
        except Exception as exc:
            # The replica died (or was killed) under the submit.
            self._revoke(attempt)
            raise RankUnavailable(
                rank_id, f"rank {rank_id} refused dispatch: {exc}"
            ) from exc
        self._phase("mid-shard", rank_id, job.id)
        return attempt

    def _collect_attempt(
        self, job: ClusterJob, attempt: _Attempt
    ) -> MatchResult:
        """Wait for one routed attempt, enforcing the route timeout and
        exactly-once integration.  Raises :class:`RankUnavailable` when
        the attempt was revoked (crash/partition/timeout) and
        :class:`JobFailed` when the replica answered with a failure."""
        rank = self.ranks[attempt.rank_id]
        deadline = time.monotonic() + self.config.service_route_timeout_s
        try:
            rank_job = rank.service.job(attempt.rank_job_id)
        except KeyError as exc:
            # The incarnation that took the dispatch is gone already.
            self._revoke(attempt)
            raise RankUnavailable(
                attempt.rank_id,
                f"rank {attempt.rank_id} lost job {attempt.rank_job_id} "
                f"(service incarnation replaced)",
            ) from exc
        while not rank_job.done.wait(timeout=self._WAIT_POLL_S):
            if (
                rank.state != LIVE
                or rank.generation != attempt.generation
            ):
                self._revoke(attempt)
                raise RankUnavailable(
                    attempt.rank_id,
                    f"rank {attempt.rank_id} crashed mid-request",
                )
            if time.monotonic() >= deadline:
                self._revoke(attempt)
                raise RankUnavailable(
                    attempt.rank_id,
                    f"rank {attempt.rank_id} exceeded the route timeout "
                    f"({self.config.service_route_timeout_s}s)",
                )
        self._phase("post-commit-pre-reply", attempt.rank_id, job.id)
        with self._lock:
            partitioned = attempt.rank_id in self._partitioned
        if (
            rank.state != LIVE
            or rank.generation != attempt.generation
            or partitioned
        ):
            # The replica committed (its journal has the result) but
            # the reply is lost on the wire.  Revoke so the answer is
            # never integrated from this channel; the failover replica
            # supplies the one integrated result, and the restarted
            # primary answers any later retry from its journal.
            self._revoke(attempt)
            self.revoked_replies += 1
            raise RankUnavailable(
                attempt.rank_id,
                f"rank {attempt.rank_id} became unreachable before its "
                f"reply was integrated",
            )
        with self._tracker_lock:
            if self._tracker.is_revoked(attempt.rank_id, attempt.seq):
                raise RankUnavailable(
                    attempt.rank_id,
                    f"attempt seq {attempt.seq} was revoked",
                )
            if self._tracker.is_seen(attempt.rank_id, attempt.seq):
                raise RankUnavailable(
                    attempt.rank_id,
                    f"attempt seq {attempt.seq} was already integrated",
                )
            self._tracker.mark_seen(attempt.rank_id, attempt.seq)
        if rank_job.state == DONE and rank_job.result is not None:
            return rank_job.result
        if rank_job.state in (FAILED, EXPIRED, CANCELLED):
            raise JobFailed(
                f"rank {attempt.rank_id} job {attempt.rank_job_id} "
                f"{rank_job.state}: {rank_job.error}"
            )
        raise RankUnavailable(
            attempt.rank_id,
            f"rank {attempt.rank_id} job {attempt.rank_job_id} settled "
            f"{rank_job.state} without a result",
        )

    def _route_with_failover(
        self, job: ClusterJob, *, key: str, part: int, num_parts: int
    ) -> tuple[MatchResult, int]:
        """Try the shard's replicas in affinity order until one
        answers; each failed attempt is revoked before the next is
        dispatched, and the idempotency key is identical across
        attempts, so at most one result is ever integrated."""
        errors: list[str] = []
        tried: set[int] = set()
        last_failure: JobFailed | None = None
        last_admission: AdmissionError | None = None
        for round_no in range(2 * len(self.ranks) + 1):
            replicas = self._reachable_replicas(job.graph_fp)
            if len(replicas) < self.quorum:
                self.shed += 1
                raise self._front.reject(
                    "shard-unavailable",
                    f"shard for graph {job.graph_fp[:12]} fell below "
                    f"quorum mid-request "
                    f"({len(replicas)}/{self.replication} reachable): "
                    + ("; ".join(errors) or "no attempts"),
                    retry_after=1.0,
                )
            fresh = [r for r in replicas if r not in tried]
            target = (fresh or replicas)[0]
            if not fresh:
                tried.clear()
            tried.add(target)
            if round_no > 0:
                self.failovers += 1
                job.failovers += 1
                with self._tracker_lock:
                    self._tracker.retransmissions += 1
            try:
                attempt = self._dispatch_attempt(
                    job, target, key=key, part=part, num_parts=num_parts
                )
                return self._collect_attempt(job, attempt), target
            except RankUnavailable as exc:
                errors.append(str(exc))
                if isinstance(exc.__cause__, AdmissionError):
                    last_admission = exc.__cause__
                continue
            except JobFailed as exc:
                # The replica *answered* with a failure.  It may be
                # replica-local (an injected engine fault); give the
                # other replicas one shot before surfacing it.
                errors.append(str(exc))
                last_failure = exc
                continue
        if last_failure is not None:
            raise last_failure
        if last_admission is not None:
            # Every replica rejected for an admission reason — surface
            # it machine-readably (429/503 on the HTTP face) instead of
            # a generic routing failure.
            raise last_admission
        raise JobFailed(
            f"job {job.id}: every routed attempt failed: "
            + "; ".join(errors)
        )

    # ------------------------------------------------------------------
    # Split queries
    # ------------------------------------------------------------------
    def _run_split(self, job: ClusterJob) -> tuple[MatchResult, int]:
        """Fan one query out as ``num_parts`` strided part-requests
        across the shard's replicas, accounted in a
        :class:`StrideLedger`.  A replica failure invalidates only its
        uncommitted parts (``begin_recovery``/``adopt``); committed
        part counts survive, so the query resumes instead of
        restarting."""
        n = job.num_parts
        base_key = job.idempotency_key or job.id
        self.split_queries += 1
        ledger = StrideLedger()
        pending: dict[int, _Attempt] = {}

        def part_key(part: int) -> str:
            return f"{base_key}#p{part}.{n}"

        def dispatch_part(part: int, exclude: set[int]) -> _Attempt:
            last: RankUnavailable | None = None
            for _ in range(len(self.ranks) + 1):
                replicas = self._reachable_replicas(job.graph_fp)
                if len(replicas) < self.quorum:
                    self.shed += 1
                    raise self._front.reject(
                        "shard-unavailable",
                        f"shard for graph {job.graph_fp[:12]} fell "
                        f"below quorum during a split query",
                        retry_after=1.0,
                    )
                pool = [r for r in replicas if r not in exclude] or replicas
                target = pool[part % len(pool)]
                try:
                    return self._dispatch_attempt(
                        job, target, key=part_key(part),
                        part=part, num_parts=n,
                    )
                except RankUnavailable as exc:
                    last = exc
                    exclude.add(target)
                    continue
            raise last if last is not None else JobFailed(
                f"job {job.id}: no replica accepted part {part}/{n}"
            )

        for part in range(n):
            attempt = dispatch_part(part, set())
            ledger.open((0, part, part + 1), attempt.rank_id)
            pending[part] = attempt

        parts_done: dict[int, MatchResult] = {}
        remaining = set(range(n))
        recoveries = 0
        served_by = -1
        while remaining:
            part = min(remaining)
            attempt = pending[part]
            stride_key = (0, part, part + 1)
            try:
                result = self._collect_attempt(job, attempt)
            except (RankUnavailable, JobFailed) as exc:
                recoveries += 1
                if recoveries > 3 * (n + len(self.ranks)):
                    raise JobFailed(
                        f"job {job.id}: split recovery did not "
                        f"converge: {exc}"
                    ) from exc
                failed_rank = attempt.rank_id
                dirty = ledger.begin_recovery(failed_rank)
                if stride_key not in dirty:
                    dirty.append(stride_key)
                self.recovered_parts += len(dirty)
                job.parts_recovered += len(dirty)
                self.failovers += 1
                job.failovers += 1
                with self._tracker_lock:
                    self._tracker.retransmissions += 1
                for key in dirty:
                    dirty_part = key[1]
                    redo = dispatch_part(dirty_part, {failed_rank})
                    ledger.adopt(key, redo.rank_id)
                    pending[dirty_part] = redo
                    remaining.add(dirty_part)
                continue
            gen = ledger.gen_of(stride_key)
            ledger.finish_item(
                stride_key, gen, attempt.rank_id, int(result.count)
            )
            parts_done[part] = result
            served_by = attempt.rank_id
            remaining.discard(part)

        stats = SearchStats()
        for result in parts_done.values():
            stats = stats.merge(result.stats)
        first = parts_done[min(parts_done)]
        merged = MatchResult(
            count=ledger.committed_total,
            matches=None,
            time_ms=sum(r.time_ms for r in parts_done.values()),
            cost=CostModel(self.config.device),
            stats=stats,
            order=first.order,
        )
        return merged, served_by

    # ------------------------------------------------------------------
    def _run_job(self, job: ClusterJob) -> None:
        job.state = RUNNING
        try:
            if job.num_parts > 1:
                result, replica = self._run_split(job)
            else:
                key = job.idempotency_key or job.id
                result, replica = self._route_with_failover(
                    job, key=key, part=0, num_parts=1
                )
            job.result = result
            job.replica = replica
            job.state = DONE
        except AdmissionError as exc:
            job.state = FAILED
            job.reason = exc.reason
            job.retry_after = exc.retry_after
            job.error = str(exc)
        except Exception as exc:
            job.state = FAILED
            job.error = str(exc)
        job.finished_at = time.time()
        job.done.set()
