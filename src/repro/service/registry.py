"""Graph registry: load each data graph once, serve it forever.

Every one-shot entry point (``CuTSMatcher``, the CLI) pays the same tax
per query: copy the data graph in, build a matcher, throw both away.
The registry is the serving-side fix — the analogue of an inference
server keeping weights hot.  A graph is registered **once**; the handle
keeps a persistent engine bound to it (a plain in-process
:class:`~repro.core.matcher.CuTSMatcher` for ``workers == 1``, a
:class:`~repro.parallel.ParallelMatcher` — whose
:class:`~repro.parallel.sharedmem.SharedCSR` segment and process pool
live as long as the handle — for ``workers > 1``), and every request
against that graph reuses it.

Handles are keyed two ways: by **fingerprint** (content SHA-256 via
:func:`repro.fingerprint.graph_fingerprint` — the same function the
checkpoint store keys on) and by **name**.  Registering the same
content twice is idempotent.  Re-registering a *name* with different
content replaces the handle, closes the old engine, and fires
``on_replace(old_fingerprint)`` so the service can invalidate that
graph's cache entries — the one channel through which a stale answer
could otherwise alias a live name.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable

from ..analysis.sanitizer import make_rlock
from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher
from ..fingerprint import graph_fingerprint
from ..graph.csr import CSRGraph
from ..parallel.matcher import ParallelMatcher
from ..storage.overlay import spliced_graph
from ..versioning.delta import EdgeDelta

__all__ = [
    "GraphHandle",
    "GraphRegistry",
    "VersionCommit",
    "VersionConflictError",
]


class VersionConflictError(RuntimeError):
    """A concurrent commit advanced the head between delta construction
    and linking; the caller should re-read the head and retry."""


@dataclass(frozen=True)
class VersionCommit:
    """Outcome of one :meth:`GraphRegistry.mutate_edges` call.

    ``delta is None`` means the request reduced to a no-op (every
    insert already present, every delete already absent): ``child`` is
    ``parent`` and nothing changed.  ``pruned`` lists fingerprints of
    versions the retention policy evicted — the service must drop their
    cache entries.
    """

    name: str
    parent: "GraphHandle"
    child: "GraphHandle"
    delta: EdgeDelta | None
    pruned: tuple[str, ...] = ()

    @property
    def changed(self) -> bool:
        return self.delta is not None


def _graph_bytes(graph: CSRGraph) -> int:
    """Resident bytes of one registered graph (its CSR arrays)."""
    total = (
        graph.indptr.nbytes
        + graph.indices.nbytes
        + graph.rindptr.nbytes
        + graph.rindices.nbytes
    )
    if graph.labels is not None:
        total += graph.labels.nbytes
    return total


class GraphHandle:
    """One registered data graph plus its persistent engine."""

    def __init__(
        self,
        graph: CSRGraph,
        name: str,
        fingerprint: str,
        config: CuTSConfig,
        workers: int,
        generation: int,
        parent_fp: str | None = None,
        lineage_depth: int = 0,
    ) -> None:
        self.graph = graph
        self.name = name
        self.fingerprint = fingerprint
        self.config = config
        self.workers = workers
        self.generation = generation
        # Version lineage: fingerprint of the version this one was
        # committed from (None for a root), this version's depth in its
        # chain, whether a newer version has superseded it as the head,
        # and the normalised delta that produced it (the dispatcher's
        # incremental probe reads it; None for roots and replacements).
        self.parent_fp = parent_fp
        self.lineage_depth = lineage_depth
        self.retired = False
        self.commit_delta: EdgeDelta | None = None
        self.registered_at = time.time()
        self.resident_bytes = _graph_bytes(graph)
        self.queries_served = 0
        self._lock = make_rlock("GraphHandle._lock")
        self._serial: CuTSMatcher | None = None
        self._parallel: ParallelMatcher | None = None
        self._closed = False

    # ------------------------------------------------------------------
    def matcher(self) -> CuTSMatcher | ParallelMatcher:
        """The handle's persistent engine, built on first use."""
        with self._lock:
            if self._closed:
                raise ValueError(f"graph handle {self.name!r} is closed")
            if self.workers > 1:
                if self._parallel is None:
                    self._parallel = ParallelMatcher(
                        self.graph, self.config, workers=self.workers
                    )
                return self._parallel
            if self._serial is None:
                self._serial = CuTSMatcher(self.graph, self.config)
            return self._serial

    def fallback_matcher(self) -> CuTSMatcher:
        """A persistent in-process serial engine for this graph,
        independent of the worker pool.  The dispatcher retries a
        failed pool pass on it: a broken pool (or a chaos-injected
        pool fault) degrades one batch to serial execution instead of
        failing every job in it."""
        with self._lock:
            if self._closed:
                raise ValueError(f"graph handle {self.name!r} is closed")
            if self._serial is None:
                self._serial = CuTSMatcher(self.graph, self.config)
            return self._serial

    def live_worker_pids(self) -> list[int]:
        """Pids of an already-built pool engine (empty when the handle
        serves in-process or the pool was never built).  Read-only: it
        never *creates* an engine — the cluster's kill path uses it to
        SIGKILL a crashed replica's workers without booting new ones."""
        with self._lock:
            parallel = self._parallel
        if parallel is None:
            return []
        try:
            return list(parallel.worker_pids())
        except Exception:
            return []  # pool already torn down under us

    def close(self) -> None:
        # Swap the engines out under the lock, shut them down outside
        # it: ParallelMatcher.close() blocks on pool shutdown, and a
        # blocked holder would stall every thread touching this handle
        # (RP010).
        with self._lock:
            self._closed = True
            parallel, self._parallel = self._parallel, None
            self._serial = None
        if parallel is not None:
            parallel.close()

    def note_served(self, count: int) -> None:
        """Credit ``count`` settled requests (dispatch thread)."""
        with self._lock:
            self.queries_served += count

    def relink(
        self,
        parent_fp: str | None,
        lineage_depth: int,
        delta: EdgeDelta | None,
    ) -> None:
        """Re-attach this handle into a chain as its new head.  Happens
        when a delta cycles back to retained content (insert then
        delete the same edge): content addressing means the *handle*
        is the version, so it simply resumes as head."""
        with self._lock:
            self.parent_fp = parent_fp
            self.lineage_depth = lineage_depth
            self.commit_delta = delta
            self.retired = False

    def incremental_basis(self) -> tuple[str | None, "EdgeDelta | None"]:
        """The ``(parent fingerprint, commit delta)`` pair this version
        was committed from, read atomically — what the dispatcher's
        incremental probe keys its parent-cache lookup on.  ``(None,
        None)`` for roots and whole-graph replacements."""
        with self._lock:
            if self.commit_delta is None:
                return None, None
            return self.parent_fp, self.commit_delta

    def mark_retired(self) -> None:
        """A newer version superseded this one as the name's head; the
        handle stays open and servable (``as_of`` time travel) until
        retention prunes it."""
        with self._lock:
            self.retired = True

    def info(self) -> dict[str, object]:
        """JSON description for ``/graphs``."""
        with self._lock:
            served = self.queries_served
            retired = self.retired
            parent_fp = self.parent_fp
            depth = self.lineage_depth
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "num_vertices": self.graph.num_vertices,
            "num_edges": self.graph.num_edges,
            "resident_bytes": self.resident_bytes,
            "generation": self.generation,
            "workers": self.workers,
            "queries_served": served,
            "parent_fingerprint": parent_fp,
            "lineage_depth": depth,
            "retired": retired,
        }


class GraphRegistry:
    """Fingerprint- and name-keyed store of :class:`GraphHandle`."""

    def __init__(
        self,
        config: CuTSConfig,
        *,
        workers: int = 1,
        on_replace: Callable[[str], None] | None = None,
    ) -> None:
        self.config = config
        self.workers = workers
        self._on_replace = on_replace
        self._lock = make_rlock("GraphRegistry._lock")
        self._by_name: dict[str, GraphHandle] = {}
        self._by_fp: dict[str, GraphHandle] = {}
        self._generation = 0
        self.registered = 0
        self.replaced = 0
        self.commits = 0

    # ------------------------------------------------------------------
    def register(self, graph: CSRGraph, name: str | None = None) -> GraphHandle:
        """Register ``graph`` (idempotent for identical content).

        Reusing a name for *different* content replaces the old handle
        (closing its engine) and fires ``on_replace`` with the old
        fingerprint so dependent caches invalidate.
        """
        if graph.num_vertices == 0:
            raise ValueError("cannot register an empty data graph")
        fp = graph_fingerprint(graph)
        name = name or graph.name or fp[:12]
        replaced_fp: str | None = None
        to_close: GraphHandle | None = None
        with self._lock:
            existing = self._by_name.get(name)
            if existing is not None and existing.fingerprint == fp:
                return existing
            same_content = self._by_fp.get(fp)
            if existing is not None:
                # Name reuse with different content: the old entry (and
                # everything cached under it) must die with it.  The
                # replacement is recorded as a *lineage link* with no
                # delta — a full replacement is the degenerate commit
                # whose dirty ball is the whole graph, which is exactly
                # why every cache entry under the old fingerprint goes.
                self._unlink(existing)
                to_close = existing
                replaced_fp = existing.fingerprint
                self.replaced += 1
            if same_content is not None and replaced_fp is None:
                # Same bytes under a second name: alias, don't reload.
                self._by_name[name] = same_content
                handle = same_content
            else:
                self._generation += 1
                handle = GraphHandle(
                    graph, name, fp, self.config, self.workers,
                    self._generation,
                    parent_fp=replaced_fp,
                    lineage_depth=(
                        0 if to_close is None else to_close.lineage_depth + 1
                    ),
                )
                self._by_name[name] = handle
                self._by_fp[fp] = handle
                self.registered += 1
        # The dead engine shuts down only after the lock is released:
        # its pool shutdown blocks, and registrations of *other* graphs
        # must not queue behind it (RP010).
        if to_close is not None:
            to_close.close()
        if replaced_fp is not None and self._on_replace is not None:
            self._on_replace(replaced_fp)
        return handle

    def _unlink(self, handle: GraphHandle) -> None:
        """Remove ``handle`` from both maps.  Caller holds ``_lock``
        and closes the handle *after* releasing it."""
        self._by_fp.pop(handle.fingerprint, None)
        for alias in [
            n for n, h in self._by_name.items() if h is handle
        ]:
            self._by_name.pop(alias)

    # ------------------------------------------------------------------
    # Version commits
    # ------------------------------------------------------------------
    def mutate_edges(
        self,
        key: str,
        *,
        inserts: object = (),
        deletes: object = (),
        directed: bool = True,
    ) -> VersionCommit:
        """Commit an edge delta against the head of ``key``'s chain.

        The delta is normalised against the current head, the child CSR
        is built by the non-mutating overlay splice (the parent's
        arrays are never written — live matches against it cannot be
        torn), and the name advances to the child.  The parent handle
        stays registered (retired) for ``as_of`` time travel until the
        retention policy (``config.versioning_max_versions``) prunes
        it.  A concurrent commit that advanced the head first raises
        :class:`VersionConflictError`.
        """
        head = self.resolve(key)
        name = head.name
        delta = EdgeDelta.build(
            inserts, deletes, parent=head.graph, directed=directed
        )
        if delta.is_empty:
            return VersionCommit(name, head, head, None)
        child_graph = spliced_graph(
            head.graph, delta.inserts, delta.deletes, delta.num_vertices
        )
        fp = graph_fingerprint(child_graph)
        depth = head.lineage_depth + 1
        to_prune: list[GraphHandle] = []
        with self._lock:
            if self._by_name.get(name) is not head:
                raise VersionConflictError(
                    f"graph {name!r} was committed concurrently; "
                    f"re-read the head and retry"
                )
            child = self._by_fp.get(fp)
            if child is not None:
                # The delta cycled back to retained content; that
                # handle resumes as head.
                child.relink(head.fingerprint, depth, delta)
            else:
                self._generation += 1
                child = GraphHandle(
                    child_graph, name, fp, self.config, self.workers,
                    self._generation,
                    parent_fp=head.fingerprint,
                    lineage_depth=depth,
                )
                child.commit_delta = delta
                self._by_fp[fp] = child
                self.registered += 1
            self._by_name[name] = child
            self.commits += 1
            # Retention: keep at most versioning_max_versions links of
            # this chain registered; older ones are pruned unless some
            # other *name* still aliases them.
            chain = self._chain_locked(child)
            named = set(map(id, self._by_name.values()))
            for stale in chain[self.config.versioning_max_versions:]:
                if id(stale) not in named:
                    self._by_fp.pop(stale.fingerprint, None)
                    to_prune.append(stale)
        head.mark_retired()
        # Engines shut down outside the lock (pool shutdown blocks and
        # must not stall unrelated registrations — same rule as
        # register()'s replacement path).
        for stale in to_prune:
            stale.close()
        return VersionCommit(
            name, head, child, delta,
            pruned=tuple(h.fingerprint for h in to_prune),
        )

    def _chain_locked(self, head: GraphHandle) -> list[GraphHandle]:
        """Retained chain from ``head`` back through parents (head
        first).  Caller holds ``_lock``."""
        chain = [head]
        seen = {head.fingerprint}
        cursor = head
        while cursor.parent_fp is not None:
            parent = self._by_fp.get(cursor.parent_fp)
            if parent is None or parent.fingerprint in seen:
                break
            chain.append(parent)
            seen.add(parent.fingerprint)
            cursor = parent
        return chain

    def lineage(self, key: str) -> list[dict[str, object]]:
        """The retained version chain of ``key``'s graph, oldest first
        (the head is the last entry)."""
        head = self.resolve(key)
        with self._lock:
            chain = self._chain_locked(head)
        out = []
        for handle in reversed(chain):
            entry = handle.info()
            entry["head"] = handle is head
            out.append(entry)
        return out

    def adopt_version(
        self,
        graph: CSRGraph,
        name: str,
        *,
        parent_fp: str | None,
        lineage_depth: int,
        head: bool,
        delta: EdgeDelta | None = None,
    ) -> GraphHandle:
        """Install a recovered version (state-dir replay) with its
        journaled lineage position.  Non-head versions come back
        retired; the head also takes the name."""
        if graph.num_vertices == 0:
            raise ValueError("cannot adopt an empty data graph")
        fp = graph_fingerprint(graph)
        with self._lock:
            handle = self._by_fp.get(fp)
            if handle is None:
                self._generation += 1
                handle = GraphHandle(
                    graph, name, fp, self.config, self.workers,
                    self._generation,
                    parent_fp=parent_fp,
                    lineage_depth=lineage_depth,
                )
                self._by_fp[fp] = handle
                self.registered += 1
            handle.commit_delta = delta
            if head:
                self._by_name[name] = handle
        if not head:
            handle.mark_retired()
        return handle

    def unregister(self, key: str) -> bool:
        """Remove a graph by name or fingerprint; fires ``on_replace``
        so cached results for it are invalidated."""
        with self._lock:
            handle = self._by_name.get(key) or self._by_fp.get(key)
            if handle is None:
                return False
            self._unlink(handle)
            fp = handle.fingerprint
        handle.close()
        if self._on_replace is not None:
            self._on_replace(fp)
        return True

    def resolve(self, key: str) -> GraphHandle:
        """Handle for a name or fingerprint; raises ``KeyError``."""
        with self._lock:
            handle = self._by_name.get(key) or self._by_fp.get(key)
        if handle is None:
            raise KeyError(f"no registered graph named {key!r}")
        return handle

    def by_fingerprint(self, fp: str) -> GraphHandle | None:
        with self._lock:
            return self._by_fp.get(fp)

    def handles(self) -> list[GraphHandle]:
        with self._lock:
            return list(self._by_fp.values())

    def names(self) -> dict[str, str]:
        """Snapshot of the name -> fingerprint map (aliases included);
        what the service persists to the state dir."""
        with self._lock:
            return {
                name: handle.fingerprint
                for name, handle in self._by_name.items()
            }

    @property
    def resident_bytes(self) -> int:
        """Total bytes of registered graph arrays (governor charge)."""
        with self._lock:
            return sum(h.resident_bytes for h in self._by_fp.values())

    def close(self) -> None:
        with self._lock:
            handles = list(self._by_fp.values())
            self._by_fp.clear()
            self._by_name.clear()
        for handle in handles:
            handle.close()
