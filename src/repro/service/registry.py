"""Graph registry: load each data graph once, serve it forever.

Every one-shot entry point (``CuTSMatcher``, the CLI) pays the same tax
per query: copy the data graph in, build a matcher, throw both away.
The registry is the serving-side fix — the analogue of an inference
server keeping weights hot.  A graph is registered **once**; the handle
keeps a persistent engine bound to it (a plain in-process
:class:`~repro.core.matcher.CuTSMatcher` for ``workers == 1``, a
:class:`~repro.parallel.ParallelMatcher` — whose
:class:`~repro.parallel.sharedmem.SharedCSR` segment and process pool
live as long as the handle — for ``workers > 1``), and every request
against that graph reuses it.

Handles are keyed two ways: by **fingerprint** (content SHA-256 via
:func:`repro.fingerprint.graph_fingerprint` — the same function the
checkpoint store keys on) and by **name**.  Registering the same
content twice is idempotent.  Re-registering a *name* with different
content replaces the handle, closes the old engine, and fires
``on_replace(old_fingerprint)`` so the service can invalidate that
graph's cache entries — the one channel through which a stale answer
could otherwise alias a live name.
"""

from __future__ import annotations

import time
from typing import Callable

from ..analysis.sanitizer import make_rlock
from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher
from ..fingerprint import graph_fingerprint
from ..graph.csr import CSRGraph
from ..parallel.matcher import ParallelMatcher

__all__ = ["GraphHandle", "GraphRegistry"]


def _graph_bytes(graph: CSRGraph) -> int:
    """Resident bytes of one registered graph (its CSR arrays)."""
    total = (
        graph.indptr.nbytes
        + graph.indices.nbytes
        + graph.rindptr.nbytes
        + graph.rindices.nbytes
    )
    if graph.labels is not None:
        total += graph.labels.nbytes
    return total


class GraphHandle:
    """One registered data graph plus its persistent engine."""

    def __init__(
        self,
        graph: CSRGraph,
        name: str,
        fingerprint: str,
        config: CuTSConfig,
        workers: int,
        generation: int,
    ) -> None:
        self.graph = graph
        self.name = name
        self.fingerprint = fingerprint
        self.config = config
        self.workers = workers
        self.generation = generation
        self.registered_at = time.time()
        self.resident_bytes = _graph_bytes(graph)
        self.queries_served = 0
        self._lock = make_rlock("GraphHandle._lock")
        self._serial: CuTSMatcher | None = None
        self._parallel: ParallelMatcher | None = None
        self._closed = False

    # ------------------------------------------------------------------
    def matcher(self) -> CuTSMatcher | ParallelMatcher:
        """The handle's persistent engine, built on first use."""
        with self._lock:
            if self._closed:
                raise ValueError(f"graph handle {self.name!r} is closed")
            if self.workers > 1:
                if self._parallel is None:
                    self._parallel = ParallelMatcher(
                        self.graph, self.config, workers=self.workers
                    )
                return self._parallel
            if self._serial is None:
                self._serial = CuTSMatcher(self.graph, self.config)
            return self._serial

    def fallback_matcher(self) -> CuTSMatcher:
        """A persistent in-process serial engine for this graph,
        independent of the worker pool.  The dispatcher retries a
        failed pool pass on it: a broken pool (or a chaos-injected
        pool fault) degrades one batch to serial execution instead of
        failing every job in it."""
        with self._lock:
            if self._closed:
                raise ValueError(f"graph handle {self.name!r} is closed")
            if self._serial is None:
                self._serial = CuTSMatcher(self.graph, self.config)
            return self._serial

    def live_worker_pids(self) -> list[int]:
        """Pids of an already-built pool engine (empty when the handle
        serves in-process or the pool was never built).  Read-only: it
        never *creates* an engine — the cluster's kill path uses it to
        SIGKILL a crashed replica's workers without booting new ones."""
        with self._lock:
            parallel = self._parallel
        if parallel is None:
            return []
        try:
            return list(parallel.worker_pids())
        except Exception:
            return []  # pool already torn down under us

    def close(self) -> None:
        # Swap the engines out under the lock, shut them down outside
        # it: ParallelMatcher.close() blocks on pool shutdown, and a
        # blocked holder would stall every thread touching this handle
        # (RP010).
        with self._lock:
            self._closed = True
            parallel, self._parallel = self._parallel, None
            self._serial = None
        if parallel is not None:
            parallel.close()

    def note_served(self, count: int) -> None:
        """Credit ``count`` settled requests (dispatch thread)."""
        with self._lock:
            self.queries_served += count

    def info(self) -> dict[str, object]:
        """JSON description for ``/graphs``."""
        with self._lock:
            served = self.queries_served
        return {
            "name": self.name,
            "fingerprint": self.fingerprint,
            "num_vertices": self.graph.num_vertices,
            "num_edges": self.graph.num_edges,
            "resident_bytes": self.resident_bytes,
            "generation": self.generation,
            "workers": self.workers,
            "queries_served": served,
        }


class GraphRegistry:
    """Fingerprint- and name-keyed store of :class:`GraphHandle`."""

    def __init__(
        self,
        config: CuTSConfig,
        *,
        workers: int = 1,
        on_replace: Callable[[str], None] | None = None,
    ) -> None:
        self.config = config
        self.workers = workers
        self._on_replace = on_replace
        self._lock = make_rlock("GraphRegistry._lock")
        self._by_name: dict[str, GraphHandle] = {}
        self._by_fp: dict[str, GraphHandle] = {}
        self._generation = 0
        self.registered = 0
        self.replaced = 0

    # ------------------------------------------------------------------
    def register(self, graph: CSRGraph, name: str | None = None) -> GraphHandle:
        """Register ``graph`` (idempotent for identical content).

        Reusing a name for *different* content replaces the old handle
        (closing its engine) and fires ``on_replace`` with the old
        fingerprint so dependent caches invalidate.
        """
        if graph.num_vertices == 0:
            raise ValueError("cannot register an empty data graph")
        fp = graph_fingerprint(graph)
        name = name or graph.name or fp[:12]
        replaced_fp: str | None = None
        to_close: GraphHandle | None = None
        with self._lock:
            existing = self._by_name.get(name)
            if existing is not None and existing.fingerprint == fp:
                return existing
            same_content = self._by_fp.get(fp)
            if existing is not None:
                # Name reuse with different content: the old entry (and
                # everything cached under it) must die with it.
                self._unlink(existing)
                to_close = existing
                replaced_fp = existing.fingerprint
                self.replaced += 1
            if same_content is not None and replaced_fp is None:
                # Same bytes under a second name: alias, don't reload.
                self._by_name[name] = same_content
                handle = same_content
            else:
                self._generation += 1
                handle = GraphHandle(
                    graph, name, fp, self.config, self.workers,
                    self._generation,
                )
                self._by_name[name] = handle
                self._by_fp[fp] = handle
                self.registered += 1
        # The dead engine shuts down only after the lock is released:
        # its pool shutdown blocks, and registrations of *other* graphs
        # must not queue behind it (RP010).
        if to_close is not None:
            to_close.close()
        if replaced_fp is not None and self._on_replace is not None:
            self._on_replace(replaced_fp)
        return handle

    def _unlink(self, handle: GraphHandle) -> None:
        """Remove ``handle`` from both maps.  Caller holds ``_lock``
        and closes the handle *after* releasing it."""
        self._by_fp.pop(handle.fingerprint, None)
        for alias in [
            n for n, h in self._by_name.items() if h is handle
        ]:
            self._by_name.pop(alias)

    def unregister(self, key: str) -> bool:
        """Remove a graph by name or fingerprint; fires ``on_replace``
        so cached results for it are invalidated."""
        with self._lock:
            handle = self._by_name.get(key) or self._by_fp.get(key)
            if handle is None:
                return False
            self._unlink(handle)
            fp = handle.fingerprint
        handle.close()
        if self._on_replace is not None:
            self._on_replace(fp)
        return True

    def resolve(self, key: str) -> GraphHandle:
        """Handle for a name or fingerprint; raises ``KeyError``."""
        with self._lock:
            handle = self._by_name.get(key) or self._by_fp.get(key)
        if handle is None:
            raise KeyError(f"no registered graph named {key!r}")
        return handle

    def by_fingerprint(self, fp: str) -> GraphHandle | None:
        with self._lock:
            return self._by_fp.get(fp)

    def handles(self) -> list[GraphHandle]:
        with self._lock:
            return list(self._by_fp.values())

    def names(self) -> dict[str, str]:
        """Snapshot of the name -> fingerprint map (aliases included);
        what the service persists to the state dir."""
        with self._lock:
            return {
                name: handle.fingerprint
                for name, handle in self._by_name.items()
            }

    @property
    def resident_bytes(self) -> int:
        """Total bytes of registered graph arrays (governor charge)."""
        with self._lock:
            return sum(h.resident_bytes for h in self._by_fp.values())

    def close(self) -> None:
        with self._lock:
            handles = list(self._by_fp.values())
            self._by_fp.clear()
            self._by_name.clear()
        for handle in handles:
            handle.close()
