"""LRU result + plan cache for the matching service.

The paper's core economic argument — build graph-resident state once,
amortize it across the whole search (trie reuse, §4.1) — extends one
level up in a serving setting: the *answers* themselves are worth
keeping.  A repeated ``(graph, query, config)`` triple must cost one
dictionary probe, not a re-enumeration.

Keys are content fingerprints (:mod:`repro.fingerprint`):
``(graph_fp, query_fp, config_fp)``.  The config fingerprint covers
exactly the count-relevant fields, so a config change that could alter
counts yields a different key (a miss), while knob changes that cannot
(worker count, cache budget, durability cadence) hit the same entry.
Staleness is therefore structural: there is no key under which a stale
count can be returned.  Re-registering a graph under the same name with
different content **explicitly invalidates** that graph's entries (the
registry drives this), covering the one remaining aliasing channel.

The ``graph_fp`` axis doubles as the **version** axis: a version commit
(:mod:`repro.versioning`) re-keys entries provably unaffected by the
delta to the child fingerprint in one pass (:meth:`promote`) — a warm
cache survives a small edge delta — while affected entries stay behind
under the parent fingerprint, still exact for ``as_of`` time travel and
still usable as the incremental re-match base.

The cache is bounded by ``max_bytes`` and evicts least-recently-used;
live bytes are reported to the caller (the service charges them against
the :class:`~repro.core.governor.MemoryGovernor`).  All counters —
hits, misses, puts, evictions, invalidations — are exposed for
``/metrics``.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable

from ..analysis.sanitizer import make_rlock

__all__ = ["CacheKey", "LRUBytesCache"]

CacheKey = tuple[str, str, str]
"""``(graph_fingerprint, query_fingerprint, config_fingerprint)``."""


class LRUBytesCache:
    """Thread-safe byte-budgeted LRU map from :data:`CacheKey` to a
    JSON-safe payload.

    Parameters
    ----------
    max_bytes:
        Byte budget; ``0`` disables the cache (every ``get`` misses,
        every ``put`` is refused).  An entry larger than the whole
        budget is refused rather than evicting everything else.
    on_bytes:
        Optional callback invoked (outside the lock) with the new live
        byte total whenever it changes; the service uses it to charge
        the memory governor.
    """

    def __init__(
        self,
        max_bytes: int,
        *,
        on_bytes: Callable[[int], None] | None = None,
    ) -> None:
        if max_bytes < 0:
            raise ValueError("max_bytes must be >= 0 (0 = disabled)")
        self.max_bytes = max_bytes
        self._on_bytes = on_bytes
        self._lock = make_rlock("LRUBytesCache._lock")
        self._entries: OrderedDict[CacheKey, tuple[Any, int]] = OrderedDict()
        self.current_bytes = 0
        self.hits = 0
        self.misses = 0
        self.puts = 0
        self.evictions = 0
        self.invalidations = 0
        self.promotions = 0
        self.retained = 0

    # ------------------------------------------------------------------
    def get(self, key: CacheKey) -> Any | None:
        """The cached payload, refreshing recency — or ``None`` (a
        miss; payloads themselves are never ``None``)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def put(self, key: CacheKey, value: Any, nbytes: int) -> bool:
        """Insert ``value`` charged at ``nbytes``; returns whether it
        was admitted (an oversized entry or a disabled cache refuses)."""
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        with self._lock:
            # The admission decision reads the same sizing fields the
            # eviction loop below maintains; taking it under the lock
            # makes check-then-insert one atomic step and keeps every
            # sizing-field access on the _lock discipline (RP009).
            if self.max_bytes == 0 or nbytes > self.max_bytes:
                return False
            old = self._entries.pop(key, None)
            if old is not None:
                self.current_bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self.current_bytes += nbytes
            self.puts += 1
            while self.current_bytes > self.max_bytes:
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self.current_bytes -= evicted_bytes
                self.evictions += 1
            total = self.current_bytes
        self._notify(total)
        return True

    def pop(self, key: CacheKey) -> Any | None:
        """Remove and return one entry (``None`` if absent).  Used to
        drop an entry that failed checksum verification — a corrupt
        read must become a miss, never a served answer."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return None
            self.current_bytes -= entry[1]
            self.invalidations += 1
            total = self.current_bytes
        self._notify(total)
        return entry[0]

    def invalidate_graph(self, graph_fp: str) -> int:
        """Drop every entry keyed under ``graph_fp`` (graph
        re-registration); returns how many were removed."""
        with self._lock:
            doomed = [k for k in self._entries if k[0] == graph_fp]
            for key in doomed:
                _, nbytes = self._entries.pop(key)
                self.current_bytes -= nbytes
            self.invalidations += len(doomed)
            total = self.current_bytes
        if doomed:
            self._notify(total)
        return len(doomed)

    def promote(
        self,
        old_fp: str,
        new_fp: str,
        should_promote: Callable[[CacheKey], bool],
    ) -> tuple[int, int]:
        """Version-commit re-keying: move every entry under ``old_fp``
        whose predicate holds to the same key under ``new_fp``.

        Entries the predicate rejects are **retained under the old
        fingerprint**: content addressing keeps them exactly right for
        the retired version (``as_of`` hits, and the dispatcher's
        incremental probe uses them as its base), and they die with
        that version when retention prunes it.  Returns ``(promoted,
        retained)``.

        The predicate runs *outside* the lock (it does degree-filter
        scans); the move itself is one atomic pass that skips keys
        evicted in between.
        """
        with self._lock:
            affected = [k for k in self._entries if k[0] == old_fp]
        decisions = [(key, bool(should_promote(key))) for key in affected]
        promoted = retained = 0
        with self._lock:
            for key, promote in decisions:
                if not promote:
                    retained += 1
                    continue
                entry = self._entries.pop(key, None)
                if entry is None:
                    continue  # evicted while deciding; nothing to move
                self._entries[(new_fp, key[1], key[2])] = entry
                promoted += 1
            self.promotions += promoted
            self.retained += retained
        return promoted, retained

    def clear(self) -> None:
        with self._lock:
            removed = len(self._entries)
            self._entries.clear()
            self.current_bytes = 0
            self.invalidations += removed
        self._notify(0)

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def snapshot(self) -> dict[str, int]:
        """Counter snapshot for ``/metrics``."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self.current_bytes,
                "max_bytes": self.max_bytes,
                "hits": self.hits,
                "misses": self.misses,
                "puts": self.puts,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "promotions": self.promotions,
                "retained": self.retained,
            }

    def _notify(self, total: int) -> None:
        if self._on_bytes is not None:
            self._on_bytes(total)
