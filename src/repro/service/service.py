"""The embedded matching service: registry + scheduler + dispatcher +
caches behind one long-lived object.

``MatchingService`` is the Python-API face of the serving stack (the
HTTP face in :mod:`repro.service.http` is a thin shell over it).  One
background dispatch thread drains the scheduler in graph-affine batches;
all matching parallelism lives *inside* the batch pass (the registry
handles' persistent engines), so one drainer is enough and the
scheduler's ordering guarantees stay trivially true.

Memory accounting: registered graph bytes plus live cache bytes are
charged to one :class:`~repro.core.governor.MemoryGovernor` (built from
``config.memory_budget_mb``).  When that budget is exhausted, admission
rejects new work with ``memory-budget`` — the serving-side analogue of
the engine's degrade-don't-die rule.  Under *sustained* pressure at the
governor's high-water mark (``service_degraded_after`` consecutive
dispatch ticks) the service drops into **degraded read-only mode**:
verified cache hits for count-only queries are still served, everything
else is rejected with reason ``degraded`` (HTTP 503 + ``Retry-After``),
and the same count of healthy ticks exits the mode.

Resilience (see DESIGN.md §12):

* ``state_dir`` makes the service crash-recoverable: graphs and job
  transitions are journaled durably (:mod:`repro.service.state`) and a
  restart re-registers graphs, re-enqueues pending jobs, restores
  terminal ones, and marks formerly-running jobs ``retryable``.
* ``idempotency_key`` on :meth:`submit` deduplicates client retries:
  a key already bound to a live or completed job returns that job's id
  instead of executing again — retries can never double-count.
* ``faults`` arms the deterministic chaos injector
  (:mod:`repro.service.faults`); the dispatcher and this loop consult
  it so tests drive the real service under seeded fault schedules.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
from dataclasses import dataclass, field

from ..analysis.sanitizer import make_rlock
from ..core.config import CuTSConfig
from ..core.governor import MemoryGovernor
from ..core.result import MatchResult
from ..core.stats import SearchStats
from ..fingerprint import config_fingerprint, graph_fingerprint
from ..graph.csr import CSRGraph
from ..parallel.matcher import resolve_workers
from ..versioning.incremental import dirty_region_for, promotion_safe
from ..versioning.lineage import (
    KIND_DELTA,
    GraphVersion,
    recover_chains,
    version_record,
)
from .cache import CacheKey, LRUBytesCache
from .dispatcher import (
    Dispatcher,
    payload_from_result,
    result_from_payload,
    verify_payload,
)
from .faults import ServiceFaultInjector, ServiceFaultPlan
from .registry import GraphHandle, GraphRegistry, VersionCommit
from .scheduler import AdmissionError, Request, Scheduler
from .state import ServiceState, graph_from_record, graph_record

__all__ = [
    "DeadlineExpired",
    "Job",
    "JobFailed",
    "MatchingService",
]

# Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
EXPIRED = "expired"
CANCELLED = "cancelled"
RETRYABLE = "retryable"

# Journal states that are settled (no further transitions).
_TERMINAL = frozenset({DONE, FAILED, EXPIRED, CANCELLED, RETRYABLE})


class DeadlineExpired(RuntimeError):
    """The request's deadline passed before the dispatcher reached it."""


class JobFailed(RuntimeError):
    """The underlying match raised; the message carries the cause."""


@dataclass
class Job:
    """One submitted request's lifecycle, visible to clients."""

    id: str
    request: Request
    state: str = PENDING
    result: MatchResult | None = None
    error: str | None = None
    cached: bool = False
    coalesced: bool = False
    plan_hit: bool = False
    fallback: bool = False
    incremental: bool = False
    idempotency_key: str | None = None
    stats: SearchStats | None = None
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event)

    def to_json(self) -> dict[str, object]:
        """JSON description for ``/jobs/<id>``."""
        out: dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "graph": self.request.graph_fp,
            "query": self.request.query_fp,
            "priority": self.request.priority,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }
        if self.fallback:
            out["fallback"] = True
        if self.incremental:
            out["incremental"] = True
        if self.idempotency_key is not None:
            out["idempotency_key"] = self.idempotency_key
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["result"] = payload_from_result(self.result)
            if self.result.matches is not None:
                out["matches"] = self.result.matches.tolist()
        elif self.stats is not None:
            out["stats"] = self.stats.to_json()
        return out


class MatchingService:
    """Long-lived query server over the cuTS engine (embedded form).

    Parameters
    ----------
    config:
        Engine + serving tunables.  ``service_*`` fields size the queue,
        the batch window, and the cache; ``memory_budget_mb`` funds the
        governor that admission control consults.
    workers:
        Worker processes per graph engine (``None`` → ``config.workers``;
        ``"auto"``/``0`` → every CPU).  ``1`` serves with persistent
        in-process matchers.
    start:
        Start the dispatch thread immediately (default).  Tests that
        want to inspect queued state before dispatch pass ``False`` and
        call :meth:`start` themselves.
    state_dir:
        Directory for the durable job journal + graph manifest
        (:class:`~repro.service.state.ServiceState`).  ``None``
        (default) serves purely in memory.  An existing state dir is
        recovered before the dispatch thread starts.
    faults:
        A :class:`~repro.service.faults.ServiceFaultPlan` (or
        ready-made injector) arming deterministic chaos on the request
        path.  ``None`` (default) injects nothing.
    """

    _POLL_S = 0.05

    def __init__(
        self,
        config: CuTSConfig | None = None,
        *,
        workers: int | str | None = None,
        start: bool = True,
        state_dir: str | None = None,
        faults: ServiceFaultPlan | ServiceFaultInjector | None = None,
    ) -> None:
        self.config = config or CuTSConfig()
        self.workers = resolve_workers(
            self.config.workers if workers is None else workers
        )
        self.config_fp = config_fingerprint(self.config)
        if isinstance(faults, ServiceFaultPlan):
            faults = ServiceFaultInjector(faults)
        self.faults = faults
        self.governor = MemoryGovernor.from_config(self.config)
        self.result_cache = LRUBytesCache(
            self.config.service_cache_bytes,
            on_bytes=lambda _total: self._recharge(),
        )
        # Plans are tiny; an eighth of the budget is already generous.
        self.plan_cache = LRUBytesCache(
            max(4096, self.config.service_cache_bytes // 8),
            on_bytes=lambda _total: self._recharge(),
        )
        self.registry = GraphRegistry(
            self.config,
            workers=self.workers,
            on_replace=self._invalidate_graph,
        )
        self.scheduler = Scheduler(
            max_depth=self.config.service_queue_depth,
            max_query_vertices=self.config.service_max_query_vertices,
            governor=self.governor,
        )
        self.dispatcher = Dispatcher(
            self.config, self.result_cache, self.plan_cache, self.config_fp,
            faults=self.faults,
        )
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = make_rlock("MatchingService._jobs_lock")
        self._job_seq = 0
        self._idempotency: dict[str, str] = {}
        # Query index: query_fp -> query graph, fed by every submit.
        # Cache promotion needs the query *shape* (its diameter and
        # root set) to prove an entry unaffected by a delta; a cache
        # key alone cannot reconstruct it.  Queries are tiny, and the
        # index only ever holds shapes this service has actually seen.
        self._queries: dict[str, CSRGraph] = {}
        self.version_commits = 0
        self.recovered_versions = 0
        self.version_records_malformed = 0
        self._degraded = False
        self._killed = False
        self._pressure_strikes = 0
        self._healthy_strikes = 0
        self.degraded_entries = 0
        self.recovered_pending = 0
        self.recovered_retryable = 0
        self.recovered_terminal = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.started_at = time.time()
        self.state: ServiceState | None = None
        self.journal_errors = 0
        self._journal_q: queue.Queue[tuple[str, object]] | None = None
        self._journal_thread: threading.Thread | None = None
        if state_dir is not None:
            self.state = ServiceState(state_dir)
            self.state.check_manifest(self.config_fp)
            # Journal writes (up to 3 fsync'd records per job) ride a
            # dedicated writer thread so they never sit on the request
            # path; the FIFO queue preserves per-job transition order,
            # which is what makes a crash unable to roll a job back
            # past a completed result, and the writer group-commits
            # each drain so bursts coalesce into fewer syscalls.
            self._journal_q = queue.Queue()
            self._journal_thread = threading.Thread(
                target=self._journal_loop, name="service-journal",
                daemon=True,
            )
            self._journal_thread.start()
            self._recover()
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="matching-service", daemon=True
            )
            self._thread.start()

    def close(self) -> None:
        """Stop dispatching, fail queued jobs, release every engine."""
        if self._killed:
            # A killed service has no journal writer left to drain and
            # must not settle anything; just release the engines.
            self.registry.close()
            return
        self._stop.set()
        for request in self.scheduler.close():
            self._finish_failure(request, "shutdown", state=FAILED)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        if self._journal_thread is not None and self._journal_q is not None:
            drained = threading.Event()
            self._journal_q.put(("stop", drained))
            drained.wait(timeout=10.0)
            self._journal_thread.join(timeout=10.0)
            self._journal_thread = None
        self.registry.close()

    def kill(self) -> None:
        """Abandon the service abruptly — the in-process analogue of a
        ``kill -9`` landing on a replica.

        Unlike :meth:`close`: queued jobs are not failed, in-flight
        work never settles (its waiters stay blocked, exactly as a
        client of a dead process would), nothing further is journaled
        (records already queued at the writer may still land, the same
        way writes racing a real SIGKILL may), and pool worker
        processes are SIGKILLed instead of joined.  The journal on
        disk is left for the next incarnation's recovery to replay.
        """
        self._killed = True
        self._stop.set()
        for pid in self._live_worker_pids():
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:  # repro: ignore[RP008] — kill raced its exit
                continue
        if self._journal_q is not None:
            # Stop the writer without draining or waiting: anything
            # enqueued after this marker is lost, like an unflushed
            # buffer at SIGKILL (the _killed guard means nothing new
            # is enqueued anyway).
            self._journal_q.put(("stop", threading.Event()))

    @property
    def killed(self) -> bool:
        """Whether :meth:`kill` has been called on this incarnation."""
        return self._killed

    def _live_worker_pids(self) -> list[int]:
        pids: list[int] = []
        for handle in self.registry.handles():
            pids.extend(handle.live_worker_pids())
        return pids

    def flush_journal(self, timeout: float | None = 10.0) -> None:
        """Block until every queued journal write has reached disk."""
        if self._journal_q is None:
            return
        flushed = threading.Event()
        self._journal_q.put(("flush", flushed))
        flushed.wait(timeout)

    def __enter__(self) -> "MatchingService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Rebuild registry + job table from the state dir (runs before
        the dispatch thread starts, so nothing races it)."""
        assert self.state is not None
        graphs = self.state.load_graphs()
        named: set[str] = set()
        # Version lineage first: for every mutated name the journal
        # decides the head — the latest record whose child graph made
        # it to disk (the journal outranks the name map, see
        # :mod:`repro.service.state`) — and retained ancestors come
        # back retired, still addressable for ``as_of`` time travel.
        chains, malformed = recover_chains(
            self.state.load_versions(), set(graphs)
        )
        self.version_records_malformed += malformed
        versioned: set[str] = set()
        for name, chain in chains.items():
            head_version = chain[-1]
            for version in chain:
                graph = graphs.get(version.fingerprint)
                if graph is None:
                    continue
                self.registry.adopt_version(
                    graph,
                    name,
                    parent_fp=version.parent,
                    lineage_depth=version.depth,
                    head=version is head_version,
                    delta=version.delta,
                )
                versioned.add(version.fingerprint)
                self.recovered_versions += 1
            named.add(head_version.fingerprint)
        # Then the name map, in its saved order, so each remaining
        # handle comes back under the same primary name it had before
        # the crash (later names for the same content become aliases,
        # as they were).  Names the journal already decided are
        # skipped: a crash between the lineage record and the map
        # rewrite leaves the map one commit stale, and replaying it
        # here would roll the head back.
        for name, fp in self.state.load_names().items():
            if name in chains:
                continue
            graph = graphs.get(fp)
            if graph is not None:
                self.registry.register(graph, name)
                named.add(fp)
        for fp, graph in graphs.items():
            if fp not in named and fp not in versioned:
                self.registry.register(graph)
        if chains:
            # Heal the name map so the next incarnation starts in sync.
            self.state.save_names(self.registry.names())
        self._recharge()
        for record in self.state.load_jobs():
            self._recover_job(record)

    def _recover_job(self, record: dict[str, object]) -> None:
        assert self.state is not None
        job_id = str(record["job_id"])
        try:
            seq = int(job_id.rsplit("-", 1)[-1])
        except ValueError:
            seq = 0
        with self._jobs_lock:
            # Recovery runs before the dispatch thread starts, but the
            # sequence counter's discipline is _jobs_lock everywhere
            # else; keeping it here costs nothing and keeps the
            # invariant machine-checkable (RP009).
            self._job_seq = max(self._job_seq, seq)
        try:
            query = graph_from_record(record["query"])  # type: ignore[arg-type]
        except Exception:
            return  # a torn legacy record: skip rather than crash boot
        limit = record.get("time_limit_ms")
        request = Request(
            job_id=job_id,
            graph_fp=str(record["graph_fp"]),
            query=query,
            query_fp=str(record["query_fp"]),
            materialize=bool(record.get("materialize", False)),
            time_limit_ms=float(limit) if limit is not None else None,
            priority=int(record.get("priority", 0)),  # type: ignore[arg-type]
            part=int(record.get("part", 0)),  # type: ignore[arg-type]
            num_parts=int(record.get("num_parts", 1)),  # type: ignore[arg-type]
        )
        raw_key = record.get("idempotency_key")
        job = Job(
            id=job_id,
            request=request,
            idempotency_key=str(raw_key) if raw_key is not None else None,
        )
        state = str(record["state"])
        if state == PENDING:
            # Journaled but never dispatched: run it now, original id.
            # (Its deadline, if any, was relative to the dead process's
            # clock and is dropped.)
            try:
                self.scheduler.submit(request)
                self.recovered_pending += 1
            except AdmissionError as exc:
                job.state = RETRYABLE
                job.error = f"recovery re-enqueue rejected: {exc}"
                job.finished_at = time.time()
                job.done.set()
                self._journal(job, RETRYABLE)
        elif state == RUNNING:
            # In flight when the process died.  The engine pass died
            # with it and nothing was journaled as completed, so a
            # retry cannot double-count.
            job.state = RETRYABLE
            job.error = (
                "service crashed while this job was running; "
                "resubmit to retry"
            )
            job.finished_at = time.time()
            job.done.set()
            self.recovered_retryable += 1
            self._journal(job, RETRYABLE)
        elif state in _TERMINAL:
            job.state = state
            err = record.get("error")
            job.error = str(err) if err is not None else None
            raw_finished = record.get("finished_at")
            job.finished_at = (
                float(raw_finished)  # type: ignore[arg-type]
                if raw_finished is not None
                else time.time()
            )
            payload = record.get("result")
            if isinstance(payload, dict) and verify_payload(payload):
                job.result = result_from_payload(payload, self.config)
                job.cached = True
            job.done.set()
            self.recovered_terminal += 1
        else:
            return
        with self._jobs_lock:
            self._jobs[job_id] = job
            self._queries.setdefault(request.query_fp, query)
            if job.idempotency_key is not None and job.state != RETRYABLE:
                self._idempotency[job.idempotency_key] = job_id

    # ------------------------------------------------------------------
    # Graph management
    # ------------------------------------------------------------------
    def register_graph(
        self, graph: CSRGraph, name: str | None = None
    ) -> str:
        """Load ``graph`` into the registry (idempotent); returns its
        fingerprint, the key to pass to :meth:`submit`/:meth:`match`."""
        if self._degraded:
            raise self.scheduler.reject(
                "degraded",
                "service is in degraded read-only mode; graph "
                "registration is paused",
            )
        handle = self.registry.register(graph, name)
        if self.state is not None:
            self.state.save_graph(graph, handle.fingerprint)
            self.state.save_names(self.registry.names())
        self._recharge()
        return handle.fingerprint

    def unregister_graph(self, key: str) -> bool:
        try:
            fp = self.registry.resolve(key).fingerprint
        except KeyError:
            fp = None
        removed = self.registry.unregister(key)
        if removed and self.state is not None:
            if fp is not None and self.registry.by_fingerprint(fp) is None:
                self.state.forget_graph(fp)
            self.state.save_names(self.registry.names())
        self._recharge()
        return removed

    def graphs(self) -> list[dict[str, object]]:
        return [h.info() for h in self.registry.handles()]

    def resolve_key(self, key: str) -> str:
        """Fingerprint for a registered name or fingerprint.  Raises
        ``KeyError`` for unknown keys.  (The HTTP face calls this
        instead of touching the registry, so the single-process service
        and the cluster router stay interchangeable behind it.)"""
        return self.registry.resolve(key).fingerprint

    def graph_info(self, key: str) -> dict[str, object]:
        """The ``/graphs`` JSON entry for one registered graph."""
        return self.registry.resolve(key).info()

    def _resolve_graph(self, graph: CSRGraph | str) -> GraphHandle:
        if isinstance(graph, CSRGraph):
            handle = self.registry.register(graph)
            if self.state is not None:
                self.state.save_graph(graph, handle.fingerprint)
                self.state.save_names(self.registry.names())
            self._recharge()
            return handle
        return self.registry.resolve(graph)

    # ------------------------------------------------------------------
    # Versioned mutation / time travel
    # ------------------------------------------------------------------
    def mutate_graph(
        self,
        key: str,
        *,
        inserts: object = (),
        deletes: object = (),
        directed: bool = True,
    ) -> dict[str, object]:
        """Commit an edge delta against the head of ``key``'s version
        chain; returns the commit summary ``POST /graphs/<name>/edges``
        serves.

        The registry builds the child by non-mutating overlay splice
        (live matches on the parent are never torn), durability follows
        the commit order of :mod:`repro.service.state` (graph bytes →
        lineage record → name map), and the result cache carries
        provably-unaffected entries over to the child fingerprint
        (:meth:`LRUBytesCache.promote` under the dirty-ball predicate).
        A request that reduces to a no-op (all inserts present, all
        deletes absent) changes nothing and says so.
        """
        if self._killed:
            raise self.scheduler.reject(
                "shutdown", "this service incarnation was killed"
            )
        if self._degraded:
            raise self.scheduler.reject(
                "degraded",
                "service is in degraded read-only mode; graph mutation "
                "is paused",
            )
        commit = self.registry.mutate_edges(
            key, inserts=inserts, deletes=deletes, directed=directed
        )
        summary: dict[str, object] = {
            "graph": commit.name,
            "parent_fingerprint": commit.parent.fingerprint,
            "fingerprint": commit.child.fingerprint,
            "lineage_depth": commit.child.lineage_depth,
            "changed": commit.changed,
        }
        if not commit.changed:
            summary.update(
                inserted=0, deleted=0, promoted=0, retained=0, pruned=[]
            )
            return summary
        delta = commit.delta
        assert delta is not None
        self.version_commits += 1
        if self.state is not None:
            # Commit order (see repro.service.state): child graph
            # bytes, then the lineage record, then the name map.  A
            # crash between any two steps leaves a journal prefix that
            # recovery reads as either "commit happened" or "never
            # happened" — nothing in between.
            self.state.save_graph(commit.child.graph, commit.child.fingerprint)
            self.state.append_version(
                version_record(
                    GraphVersion(
                        name=commit.name,
                        fingerprint=commit.child.fingerprint,
                        parent=commit.parent.fingerprint,
                        depth=commit.child.lineage_depth,
                        kind=KIND_DELTA,
                        delta=delta,
                    )
                )
            )
            self.state.save_names(self.registry.names())
        promoted, retained = self._promote_caches(commit)
        for fp in commit.pruned:
            self._invalidate_graph(fp)
            if self.state is not None:
                self.state.forget_graph(fp)
        self._recharge()
        summary.update(
            inserted=len(delta.inserts),
            deleted=len(delta.deletes),
            touched=[int(v) for v in delta.touched()],
            promoted=promoted,
            retained=retained,
            pruned=list(commit.pruned),
        )
        return summary

    def _promote_caches(self, commit: VersionCommit) -> tuple[int, int]:
        """Delta-aware cache carry-over for one commit.

        A result entry is re-keyed to the child fingerprint only when
        :func:`~repro.versioning.promotion_safe` proves both dirty
        shares of its query zero (no root candidate of either version
        inside the query's dirty ball).  Rejected entries stay behind
        under the parent fingerprint — still exact for ``as_of`` time
        travel and still the dispatcher's incremental base — and die
        when retention prunes that version.  Plan entries promote
        unconditionally: a plan is a performance hint (interval count,
        ordering), not an answer — a stale hint can cost balance, never
        a count.
        """
        delta = commit.delta
        assert delta is not None
        parent_graph = commit.parent.graph
        child_graph = commit.child.graph
        region = dirty_region_for(child_graph, delta)

        def should_promote(cache_key: CacheKey) -> bool:
            if cache_key[2] != self.config_fp:
                # An entry written under a different config: its
                # promotion proof would need that config's root
                # filter, which we cannot reconstruct.  Retain it.
                return False
            query = self._query_for(cache_key[1])
            if query is None:
                # Unknown query shape (e.g. the index predates this
                # entry's writer): no proof, no promotion.
                return False
            return promotion_safe(
                query, parent_graph, child_graph, region, self.config
            )

        promoted, retained = self.result_cache.promote(
            commit.parent.fingerprint, commit.child.fingerprint,
            should_promote,
        )
        self.plan_cache.promote(
            commit.parent.fingerprint, commit.child.fingerprint,
            lambda _key: True,
        )
        return promoted, retained

    def _query_for(self, query_fp: str) -> CSRGraph | None:
        with self._jobs_lock:
            return self._queries.get(query_fp)

    def versions(self, key: str) -> list[dict[str, object]]:
        """The retained version chain of ``key``'s graph, oldest first
        (``GET /graphs/<name>/versions``)."""
        return self.registry.lineage(key)

    def _version_of(self, head: GraphHandle, as_of: str) -> GraphHandle:
        """The retained member of ``head``'s chain whose fingerprint is
        ``as_of`` — the time-travel target.  Raises ``KeyError`` for
        fingerprints that are unknown, pruned, or from another lineage
        (never silently serves the wrong version)."""
        if as_of == head.fingerprint:
            return head
        target = self.registry.by_fingerprint(as_of)
        if target is not None:
            chain = {
                entry["fingerprint"]
                for entry in self.registry.lineage(head.fingerprint)
            }
            if as_of in chain:
                return target
        raise KeyError(
            f"version {as_of!r} is not a retained version of graph "
            f"{head.name!r} (unknown, pruned, or from another lineage)"
        )

    def compare(
        self,
        key: str,
        query: CSRGraph,
        *,
        base: str | None = None,
        timeout: float | None = None,
    ) -> dict[str, object]:
        """Shadow-compare: the same count-only query against two
        retained versions of one graph (``POST /graphs/<name>/compare``).

        ``base`` defaults to the head's parent, making the default call
        "what did the last commit change for this query?".  Both sides
        go through the ordinary submit path, so retained cache entries
        and the incremental probe both apply.
        """
        head = self.registry.resolve(key)
        base_fp = base if base is not None else head.parent_fp
        if base_fp is None:
            raise KeyError(
                f"graph {head.name!r} has no parent version to compare "
                f"against"
            )
        base_handle = self._version_of(head, base_fp)
        base_result = self.match(
            base_handle.fingerprint, query, timeout=timeout
        )
        head_result = self.match(head.fingerprint, query, timeout=timeout)
        return {
            "graph": head.name,
            "base_fingerprint": base_handle.fingerprint,
            "head_fingerprint": head.fingerprint,
            "base_count": int(base_result.count),
            "head_count": int(head_result.count),
            "count_delta": int(head_result.count) - int(base_result.count),
        }

    # ------------------------------------------------------------------
    # Submission / results
    # ------------------------------------------------------------------
    def submit(
        self,
        graph: CSRGraph | str,
        query: CSRGraph,
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
        materialize: bool = False,
        time_limit_ms: float | None = None,
        idempotency_key: str | None = None,
        part: int = 0,
        num_parts: int = 1,
        as_of: str | None = None,
    ) -> str:
        """Queue one match request; returns its job id.

        Raises :class:`~repro.service.scheduler.AdmissionError`
        synchronously when admission control refuses (queue depth,
        oversized query, memory budget, degraded mode) — rejection is an
        answer, not an exception to be retried blindly; the reason code
        says which limit was hit.  ``deadline_ms`` bounds *queue wait*
        and, for dispatched work, propagates into the engine's
        cooperative wall-clock limit.  ``idempotency_key`` deduplicates
        retries: a key already bound to a job that is not ``retryable``
        returns that job's id without executing anything.
        ``part``/``num_parts`` execute only that stride of the query's
        roots (the cluster router's unit of cross-replica splitting);
        summing the part counts over a full stride set is exact.
        ``as_of`` time-travels: the request runs against that retained
        version of the named graph's chain instead of its head
        (``KeyError`` for pruned or foreign fingerprints).
        """
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        if deadline_ms is not None and deadline_ms < 0:
            raise ValueError("deadline_ms must be >= 0")
        if num_parts < 1 or not 0 <= part < num_parts:
            raise ValueError(
                f"need 0 <= part < num_parts, got part={part} "
                f"num_parts={num_parts}"
            )
        if self._killed:
            raise self.scheduler.reject(
                "shutdown", "this service incarnation was killed"
            )
        if idempotency_key is not None:
            with self._jobs_lock:
                known = self._idempotency.get(idempotency_key)
                if known is not None and known in self._jobs:
                    return known
        handle = self._resolve_graph(graph)
        if as_of is not None:
            handle = self._version_of(handle, as_of)
        query_fp = graph_fingerprint(query)
        with self._jobs_lock:
            self._queries.setdefault(query_fp, query)
        if self._degraded:
            if num_parts != 1:
                raise self.scheduler.reject(
                    "degraded",
                    "service is in degraded read-only mode; strided "
                    "part queries are not served from cache",
                )
            return self._submit_degraded(
                handle, query, query_fp,
                materialize=materialize,
                time_limit_ms=time_limit_ms,
                priority=priority,
                idempotency_key=idempotency_key,
            )
        with self._jobs_lock:
            self._job_seq += 1
            job_id = f"job-{self._job_seq:08d}"
        request = Request(
            job_id=job_id,
            graph_fp=handle.fingerprint,
            query=query,
            query_fp=query_fp,
            materialize=materialize,
            time_limit_ms=time_limit_ms,
            priority=priority,
            deadline=(
                time.monotonic() + deadline_ms / 1000.0
                if deadline_ms is not None
                else None
            ),
            part=part,
            num_parts=num_parts,
        )
        job = Job(id=job_id, request=request, idempotency_key=idempotency_key)
        with self._jobs_lock:
            self._jobs[job_id] = job
            if idempotency_key is not None:
                self._idempotency[idempotency_key] = job_id
        # Enqueue the pending record *before* the request becomes
        # visible to the dispatch thread: once the scheduler holds it,
        # the loop may enqueue running/done for this job at any moment,
        # and the journal queue's FIFO order is what keeps a later
        # pending write from rolling the journal back past a completed
        # result.
        self._journal(job, PENDING)
        try:
            self.scheduler.submit(request)
        except AdmissionError:
            with self._jobs_lock:
                self._jobs.pop(job_id, None)
                if idempotency_key is not None:
                    self._idempotency.pop(idempotency_key, None)
            if self._journal_q is not None:
                self._journal_q.put(("forget", job_id))
            raise
        return job_id

    def _submit_degraded(
        self,
        handle: GraphHandle,
        query: CSRGraph,
        query_fp: str,
        *,
        materialize: bool,
        time_limit_ms: float | None,
        priority: int,
        idempotency_key: str | None,
    ) -> str:
        """Degraded read-only mode: serve verified count-only cache
        hits synchronously; reject everything else with ``degraded``."""
        payload = None
        if not materialize and time_limit_ms is None:
            key = (handle.fingerprint, query_fp, self.config_fp)
            candidate = self.result_cache.get(key)
            if candidate is not None and verify_payload(candidate):
                payload = candidate
        if payload is None:
            raise self.scheduler.reject(
                "degraded",
                "service is in degraded read-only mode (sustained memory "
                "pressure); only cached count queries are served",
            )
        with self._jobs_lock:
            self._job_seq += 1
            job_id = f"job-{self._job_seq:08d}"
        request = Request(
            job_id=job_id,
            graph_fp=handle.fingerprint,
            query=query,
            query_fp=query_fp,
            materialize=False,
            time_limit_ms=None,
            priority=priority,
        )
        job = Job(
            id=job_id,
            request=request,
            state=DONE,
            result=result_from_payload(payload, self.config),
            cached=True,
            idempotency_key=idempotency_key,
            finished_at=time.time(),
        )
        job.done.set()
        with self._jobs_lock:
            self._jobs[job_id] = job
            if idempotency_key is not None:
                self._idempotency[idempotency_key] = job_id
        self._journal(job, DONE, result_payload=payload)
        return job_id

    def job(self, job_id: str) -> Job:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"no job {job_id!r}")
        return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job settles (or ``timeout`` elapses)."""
        job = self.job(job_id)
        job.done.wait(timeout=timeout)
        return job

    def result(self, job_id: str, timeout: float | None = None) -> MatchResult:
        """The job's :class:`MatchResult`, raising typed errors for the
        unhappy terminal states."""
        job = self.wait(job_id, timeout=timeout)
        if not job.done.is_set():
            raise TimeoutError(f"job {job_id} still {job.state}")
        if job.state == DONE:
            if job.result is None:
                # Completed before a restart with materialize=True:
                # only count-mode payloads are journaled, so the rows
                # did not survive.
                raise JobFailed(
                    f"job {job_id} completed before a service restart and "
                    f"its materialized rows were not journaled; resubmit"
                )
            return job.result
        if job.state == EXPIRED:
            raise DeadlineExpired(f"job {job_id}: {job.error}")
        if job.state == CANCELLED:
            raise JobFailed(f"job {job_id} was cancelled")
        raise JobFailed(f"job {job_id} failed: {job.error}")

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-pending job (returns whether it was pending)."""
        job = self.job(job_id)
        if job.done.is_set() or job.state != PENDING:
            return False
        job.request.cancelled.set()
        return True

    # ------------------------------------------------------------------
    # Synchronous conveniences
    # ------------------------------------------------------------------
    def match(
        self,
        graph: CSRGraph | str,
        query: CSRGraph,
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
        materialize: bool = False,
        time_limit_ms: float | None = None,
        idempotency_key: str | None = None,
        part: int = 0,
        num_parts: int = 1,
        as_of: str | None = None,
        timeout: float | None = None,
    ) -> MatchResult:
        """Submit and wait: the one-call serving equivalent of
        :meth:`CuTSMatcher.match`."""
        job_id = self.submit(
            graph,
            query,
            priority=priority,
            deadline_ms=deadline_ms,
            materialize=materialize,
            time_limit_ms=time_limit_ms,
            idempotency_key=idempotency_key,
            part=part,
            num_parts=num_parts,
            as_of=as_of,
        )
        return self.result(job_id, timeout=timeout)

    def match_many(
        self,
        graph: CSRGraph | str,
        queries: list[CSRGraph],
        *,
        materialize: bool = False,
        time_limit_ms: float | None = None,
        timeout: float | None = None,
    ) -> list[MatchResult]:
        """Submit a whole batch at once and gather results in order.

        Submitting everything before waiting is what lets the scheduler
        hand the dispatcher one graph-affine batch and the engine run it
        as a single batched pool pass.
        """
        job_ids = [
            self.submit(
                graph,
                query,
                materialize=materialize,
                time_limit_ms=time_limit_ms,
            )
            for query in queries
        ]
        return [self.result(job_id, timeout=timeout) for job_id in job_ids]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether the service is in degraded read-only mode."""
        return self._degraded

    def metrics(self) -> dict[str, object]:
        """All counters, for ``/metrics`` and the benchmark gates."""
        out: dict[str, object] = {
            "uptime_s": time.time() - self.started_at,
            "workers": self.workers,
            "config_fingerprint": self.config_fp,
            "graphs": len(self.registry.handles()),
            "graph_resident_bytes": self.registry.resident_bytes,
            "degraded": self._degraded,
            "degraded_entries": self.degraded_entries,
            "governor": {
                "budget_bytes": self.governor.budget_bytes,
                "tracked_bytes": self.governor.tracked_bytes,
                "pressure": self.governor.pressure,
            },
            "scheduler": self.scheduler.snapshot(),
            "dispatcher": self.dispatcher.snapshot(),
            "result_cache": self.result_cache.snapshot(),
            "plan_cache": self.plan_cache.snapshot(),
            "versioning": {
                "commits": self.version_commits,
                "registry_commits": self.registry.commits,
                "recovered_versions": self.recovered_versions,
                "version_records_malformed": self.version_records_malformed,
            },
        }
        if self.state is not None:
            out["state"] = dict(self.state.snapshot()) | {
                "recovered_pending": self.recovered_pending,
                "recovered_retryable": self.recovered_retryable,
                "recovered_terminal": self.recovered_terminal,
                "journal_errors": self.journal_errors,
            }
        if self.faults is not None:
            out["faults"] = self.faults.snapshot()
        return out

    def healthz(self) -> dict[str, object]:
        return {
            "status": "degraded" if self._degraded else "ok",
            "degraded": self._degraded,
            "uptime_s": time.time() - self.started_at,
            "graphs": len(self.registry.handles()),
            "queue_depth": self.scheduler.depth,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _invalidate_graph(self, graph_fp: str) -> None:
        self.result_cache.invalidate_graph(graph_fp)
        self.plan_cache.invalidate_graph(graph_fp)

    def _recharge(self) -> None:
        """Re-point the governor at the service's live footprint."""
        total = (
            self.registry.resident_bytes
            + self.result_cache.current_bytes
            + self.plan_cache.current_bytes
        )
        self.governor.observe_words(total // 8)

    def _journal(
        self,
        job: Job,
        state: str,
        *,
        result_payload: dict[str, object] | None = None,
    ) -> None:
        """Persist one job transition (no-op without a state dir, and
        suppressed after :meth:`kill` — a dead process writes nothing)."""
        if self.state is None or self._killed:
            return
        request = job.request
        record: dict[str, object] = {
            "format": 1,
            "job_id": job.id,
            "state": state,
            "graph_fp": request.graph_fp,
            "query_fp": request.query_fp,
            "query": graph_record(request.query),
            "materialize": request.materialize,
            "time_limit_ms": request.time_limit_ms,
            "priority": request.priority,
            "part": request.part,
            "num_parts": request.num_parts,
            "idempotency_key": job.idempotency_key,
            "error": job.error,
            "submitted_at": job.submitted_at,
            "finished_at": job.finished_at,
        }
        if result_payload is not None:
            record["result"] = result_payload
        assert self._journal_q is not None
        self._journal_q.put(("write", record))

    _GATHER_S = 0.0015

    def _journal_loop(self) -> None:
        """Writer thread: group commit.

        Drains the queue in bursts: after the first op arrives it waits
        a hair (``_GATHER_S``) so a job's pending -> running burst lands
        in the same drain, then coalesces to the *newest* record per
        job (the journal is a whole-record replace, so intermediate
        states carry no information) and writes the batch with a single
        directory fsync.  Per-job order is still queue order, so a
        crash can truncate history but never roll a job back past a
        completed result.  Coalescing roughly halves the writer's
        syscall traffic, which is what keeps the journal's p50 cost on
        a GIL-bound engine inside the benchmark gate.
        """
        assert self.state is not None and self._journal_q is not None
        while True:
            ops = [self._journal_q.get()]
            time.sleep(self._GATHER_S)
            while True:
                try:
                    ops.append(self._journal_q.get_nowait())
                except queue.Empty:  # repro: ignore[RP008] — drain done
                    break
            writes: dict[str, dict[str, object]] = {}
            forgets: list[str] = []
            events: list[threading.Event] = []
            stop: threading.Event | None = None
            for op, payload in ops:
                if op == "write":
                    record = payload  # type: ignore[assignment]
                    writes[str(record["job_id"])] = record  # type: ignore[index]
                elif op == "forget":
                    writes.pop(str(payload), None)
                    forgets.append(str(payload))
                elif op == "flush":
                    events.append(payload)  # type: ignore[arg-type]
                else:  # "stop"
                    stop = payload  # type: ignore[assignment]
            try:
                if writes:
                    self.state.record_jobs(list(writes.values()))
                for job_id in forgets:
                    self.state.forget_job(job_id)
            except OSError:
                # A full/broken disk must not kill the writer: the
                # service keeps serving, the journal just goes stale
                # (and the metric below says so).
                self.journal_errors += 1
            # flush/stop waiters release only after the batch is on
            # disk — everything enqueued before them has been applied.
            for event in events:
                event.set()
            for _ in ops:
                self._journal_q.task_done()
            if stop is not None:
                stop.set()
                return

    def _observe_pressure(self) -> None:
        """One dispatch-tick reading of governor pressure, driving the
        degraded-mode hysteresis (and the OOM fault schedule)."""
        if self.faults is not None:
            self.governor.forced_pressure = self.faults.tick_oom()
        window = self.config.service_degraded_after
        if self.governor.pressure >= self.governor.high_water:
            self._pressure_strikes += 1
            self._healthy_strikes = 0
            if not self._degraded and self._pressure_strikes >= window:
                self._degraded = True
                self.degraded_entries += 1
        else:
            self._healthy_strikes += 1
            self._pressure_strikes = 0
            if self._degraded and self._healthy_strikes >= window:
                self._degraded = False

    def _finish_failure(
        self, request: Request, message: str, *, state: str
    ) -> None:
        if self._killed:
            return
        with self._jobs_lock:
            job = self._jobs.get(request.job_id)
        if job is None or job.done.is_set():
            return
        job.state = state
        job.error = message
        job.finished_at = time.time()
        self._journal(job, state)
        job.done.set()

    def _settle_outcomes(self, outcomes: list[object]) -> None:
        if self._killed:
            # The process "died" mid-batch: results computed but never
            # delivered, jobs left running in the journal — exactly the
            # state recovery marks retryable.  Settling them here would
            # resurrect work a real SIGKILL would have lost.
            return
        now = time.time()
        for outcome in outcomes:  # type: ignore[assignment]
            with self._jobs_lock:
                job = self._jobs.get(outcome.request.job_id)  # type: ignore[attr-defined]
            if job is None:
                continue
            job.cached = outcome.cached  # type: ignore[attr-defined]
            job.coalesced = outcome.coalesced  # type: ignore[attr-defined]
            job.plan_hit = outcome.plan_hit  # type: ignore[attr-defined]
            job.fallback = outcome.fallback  # type: ignore[attr-defined]
            job.incremental = outcome.incremental  # type: ignore[attr-defined]
            job.stats = outcome.stats  # type: ignore[attr-defined]
            payload: dict[str, object] | None = None
            if outcome.cancelled:  # type: ignore[attr-defined]
                job.state = CANCELLED
                job.error = outcome.error  # type: ignore[attr-defined]
            elif outcome.expired:  # type: ignore[attr-defined]
                job.state = EXPIRED
                job.error = outcome.error  # type: ignore[attr-defined]
            elif outcome.error is not None:  # type: ignore[attr-defined]
                job.state = FAILED
                job.error = outcome.error  # type: ignore[attr-defined]
            else:
                job.state = DONE
                job.result = outcome.result  # type: ignore[attr-defined]
                if job.result is not None and job.result.matches is None:
                    payload = payload_from_result(job.result)
            job.finished_at = now
            # Enqueue the terminal record before waking waiters.  The
            # write itself is asynchronous, but it is ordered after the
            # job's pending/running records — so a crash can only lose
            # the *tail* of a job's history, never reorder it, and an
            # idempotent retry after such a crash re-executes cleanly.
            self._journal(job, job.state, result_payload=payload)
            job.done.set()

    def _loop(self) -> None:
        while not self._stop.is_set():
            self._observe_pressure()
            batch, dead = self.scheduler.pop_batch(
                self.config.service_batch_max, timeout=self._POLL_S
            )
            for request in dead:
                if request.cancelled.is_set():
                    self._finish_failure(
                        request, "cancelled before dispatch", state=CANCELLED
                    )
                else:
                    self._finish_failure(
                        request,
                        "deadline-expired: request waited past its deadline",
                        state=EXPIRED,
                    )
            if not batch:
                continue
            handle = self.registry.by_fingerprint(batch[0].graph_fp)
            if handle is None:
                for request in batch:
                    self._finish_failure(
                        request, "graph was unregistered while queued",
                        state=FAILED,
                    )
                continue
            for request in batch:
                with self._jobs_lock:
                    job = self._jobs.get(request.job_id)
                if job is not None:
                    job.state = RUNNING
                    self._journal(job, RUNNING)
            outcomes = self.dispatcher.dispatch(handle, batch)
            skipped_cancelled = sum(1 for o in outcomes if o.cancelled)
            skipped_expired = sum(1 for o in outcomes if o.expired)
            if skipped_cancelled or skipped_expired:
                self.scheduler.note_dispatch_skips(
                    cancelled=skipped_cancelled, expired=skipped_expired
                )
            self._settle_outcomes(list(outcomes))
            self._recharge()
