"""The embedded matching service: registry + scheduler + dispatcher +
caches behind one long-lived object.

``MatchingService`` is the Python-API face of the serving stack (the
HTTP face in :mod:`repro.service.http` is a thin shell over it).  One
background dispatch thread drains the scheduler in graph-affine batches;
all matching parallelism lives *inside* the batch pass (the registry
handles' persistent engines), so one drainer is enough and the
scheduler's ordering guarantees stay trivially true.

Memory accounting: registered graph bytes plus live cache bytes are
charged to one :class:`~repro.core.governor.MemoryGovernor` (built from
``config.memory_budget_mb``).  When that budget is exhausted, admission
rejects new work with ``memory-budget`` — the serving-side analogue of
the engine's degrade-don't-die rule.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

from ..core.config import CuTSConfig
from ..core.governor import MemoryGovernor
from ..core.result import MatchResult
from ..fingerprint import config_fingerprint, graph_fingerprint
from ..graph.csr import CSRGraph
from ..parallel.matcher import resolve_workers
from .cache import LRUBytesCache
from .dispatcher import Dispatcher, payload_from_result
from .registry import GraphHandle, GraphRegistry
from .scheduler import AdmissionError, Request, Scheduler

__all__ = [
    "DeadlineExpired",
    "Job",
    "JobFailed",
    "MatchingService",
]

# Job lifecycle states.
PENDING = "pending"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
EXPIRED = "expired"
CANCELLED = "cancelled"


class DeadlineExpired(RuntimeError):
    """The request's deadline passed before the dispatcher reached it."""


class JobFailed(RuntimeError):
    """The underlying match raised; the message carries the cause."""


@dataclass
class Job:
    """One submitted request's lifecycle, visible to clients."""

    id: str
    request: Request
    state: str = PENDING
    result: MatchResult | None = None
    error: str | None = None
    cached: bool = False
    coalesced: bool = False
    plan_hit: bool = False
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    done: threading.Event = field(default_factory=threading.Event)

    def to_json(self) -> dict[str, object]:
        """JSON description for ``/jobs/<id>``."""
        out: dict[str, object] = {
            "id": self.id,
            "state": self.state,
            "graph": self.request.graph_fp,
            "query": self.request.query_fp,
            "priority": self.request.priority,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "submitted_at": self.submitted_at,
            "finished_at": self.finished_at,
        }
        if self.error is not None:
            out["error"] = self.error
        if self.result is not None:
            out["result"] = payload_from_result(self.result)
            if self.result.matches is not None:
                out["matches"] = self.result.matches.tolist()
        return out


class MatchingService:
    """Long-lived query server over the cuTS engine (embedded form).

    Parameters
    ----------
    config:
        Engine + serving tunables.  ``service_*`` fields size the queue,
        the batch window, and the cache; ``memory_budget_mb`` funds the
        governor that admission control consults.
    workers:
        Worker processes per graph engine (``None`` → ``config.workers``;
        ``"auto"``/``0`` → every CPU).  ``1`` serves with persistent
        in-process matchers.
    start:
        Start the dispatch thread immediately (default).  Tests that
        want to inspect queued state before dispatch pass ``False`` and
        call :meth:`start` themselves.
    """

    _POLL_S = 0.05

    def __init__(
        self,
        config: CuTSConfig | None = None,
        *,
        workers: int | str | None = None,
        start: bool = True,
    ) -> None:
        self.config = config or CuTSConfig()
        self.workers = resolve_workers(
            self.config.workers if workers is None else workers
        )
        self.config_fp = config_fingerprint(self.config)
        self.governor = MemoryGovernor.from_config(self.config)
        self.result_cache = LRUBytesCache(
            self.config.service_cache_bytes,
            on_bytes=lambda _total: self._recharge(),
        )
        # Plans are tiny; an eighth of the budget is already generous.
        self.plan_cache = LRUBytesCache(
            max(4096, self.config.service_cache_bytes // 8),
            on_bytes=lambda _total: self._recharge(),
        )
        self.registry = GraphRegistry(
            self.config,
            workers=self.workers,
            on_replace=self._invalidate_graph,
        )
        self.scheduler = Scheduler(
            max_depth=self.config.service_queue_depth,
            max_query_vertices=self.config.service_max_query_vertices,
            governor=self.governor,
        )
        self.dispatcher = Dispatcher(
            self.config, self.result_cache, self.plan_cache, self.config_fp
        )
        self._jobs: dict[str, Job] = {}
        self._jobs_lock = threading.RLock()
        self._job_seq = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.started_at = time.time()
        if start:
            self.start()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._loop, name="matching-service", daemon=True
            )
            self._thread.start()

    def close(self) -> None:
        """Stop dispatching, fail queued jobs, release every engine."""
        self._stop.set()
        for request in self.scheduler.close():
            self._finish_failure(request, "shutdown", state=FAILED)
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.registry.close()

    def __enter__(self) -> "MatchingService":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Graph management
    # ------------------------------------------------------------------
    def register_graph(
        self, graph: CSRGraph, name: str | None = None
    ) -> str:
        """Load ``graph`` into the registry (idempotent); returns its
        fingerprint, the key to pass to :meth:`submit`/:meth:`match`."""
        handle = self.registry.register(graph, name)
        self._recharge()
        return handle.fingerprint

    def unregister_graph(self, key: str) -> bool:
        removed = self.registry.unregister(key)
        self._recharge()
        return removed

    def graphs(self) -> list[dict[str, object]]:
        return [h.info() for h in self.registry.handles()]

    def _resolve_graph(self, graph: CSRGraph | str) -> GraphHandle:
        if isinstance(graph, CSRGraph):
            handle = self.registry.register(graph)
            self._recharge()
            return handle
        return self.registry.resolve(graph)

    # ------------------------------------------------------------------
    # Submission / results
    # ------------------------------------------------------------------
    def submit(
        self,
        graph: CSRGraph | str,
        query: CSRGraph,
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
        materialize: bool = False,
        time_limit_ms: float | None = None,
    ) -> str:
        """Queue one match request; returns its job id.

        Raises :class:`~repro.service.scheduler.AdmissionError`
        synchronously when admission control refuses (queue depth,
        oversized query, memory budget) — rejection is an answer, not an
        exception to be retried blindly; the reason code says which
        limit was hit.  ``deadline_ms`` bounds *queue wait*: a request
        not dispatched within it fails with ``deadline-expired``.
        """
        if query.num_vertices == 0:
            raise ValueError("query graph must have at least one vertex")
        if deadline_ms is not None and deadline_ms < 0:
            raise ValueError("deadline_ms must be >= 0")
        handle = self._resolve_graph(graph)
        with self._jobs_lock:
            self._job_seq += 1
            job_id = f"job-{self._job_seq:08d}"
        request = Request(
            job_id=job_id,
            graph_fp=handle.fingerprint,
            query=query,
            query_fp=graph_fingerprint(query),
            materialize=materialize,
            time_limit_ms=time_limit_ms,
            priority=priority,
            deadline=(
                time.monotonic() + deadline_ms / 1000.0
                if deadline_ms is not None
                else None
            ),
        )
        job = Job(id=job_id, request=request)
        with self._jobs_lock:
            self._jobs[job_id] = job
        try:
            self.scheduler.submit(request)
        except AdmissionError:
            with self._jobs_lock:
                self._jobs.pop(job_id, None)
            raise
        return job_id

    def job(self, job_id: str) -> Job:
        with self._jobs_lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"no job {job_id!r}")
        return job

    def wait(self, job_id: str, timeout: float | None = None) -> Job:
        """Block until the job settles (or ``timeout`` elapses)."""
        job = self.job(job_id)
        job.done.wait(timeout=timeout)
        return job

    def result(self, job_id: str, timeout: float | None = None) -> MatchResult:
        """The job's :class:`MatchResult`, raising typed errors for the
        unhappy terminal states."""
        job = self.wait(job_id, timeout=timeout)
        if not job.done.is_set():
            raise TimeoutError(f"job {job_id} still {job.state}")
        if job.state == DONE:
            assert job.result is not None
            return job.result
        if job.state == EXPIRED:
            raise DeadlineExpired(f"job {job_id}: {job.error}")
        if job.state == CANCELLED:
            raise JobFailed(f"job {job_id} was cancelled")
        raise JobFailed(f"job {job_id} failed: {job.error}")

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-pending job (returns whether it was pending)."""
        job = self.job(job_id)
        if job.done.is_set() or job.state != PENDING:
            return False
        job.request.cancelled.set()
        return True

    # ------------------------------------------------------------------
    # Synchronous conveniences
    # ------------------------------------------------------------------
    def match(
        self,
        graph: CSRGraph | str,
        query: CSRGraph,
        *,
        priority: int = 0,
        deadline_ms: float | None = None,
        materialize: bool = False,
        time_limit_ms: float | None = None,
        timeout: float | None = None,
    ) -> MatchResult:
        """Submit and wait: the one-call serving equivalent of
        :meth:`CuTSMatcher.match`."""
        job_id = self.submit(
            graph,
            query,
            priority=priority,
            deadline_ms=deadline_ms,
            materialize=materialize,
            time_limit_ms=time_limit_ms,
        )
        return self.result(job_id, timeout=timeout)

    def match_many(
        self,
        graph: CSRGraph | str,
        queries: list[CSRGraph],
        *,
        materialize: bool = False,
        time_limit_ms: float | None = None,
        timeout: float | None = None,
    ) -> list[MatchResult]:
        """Submit a whole batch at once and gather results in order.

        Submitting everything before waiting is what lets the scheduler
        hand the dispatcher one graph-affine batch and the engine run it
        as a single batched pool pass.
        """
        job_ids = [
            self.submit(
                graph,
                query,
                materialize=materialize,
                time_limit_ms=time_limit_ms,
            )
            for query in queries
        ]
        return [self.result(job_id, timeout=timeout) for job_id in job_ids]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def metrics(self) -> dict[str, object]:
        """All counters, for ``/metrics`` and the benchmark gates."""
        return {
            "uptime_s": time.time() - self.started_at,
            "workers": self.workers,
            "config_fingerprint": self.config_fp,
            "graphs": len(self.registry.handles()),
            "graph_resident_bytes": self.registry.resident_bytes,
            "governor": {
                "budget_bytes": self.governor.budget_bytes,
                "tracked_bytes": self.governor.tracked_bytes,
                "pressure": self.governor.pressure,
            },
            "scheduler": self.scheduler.snapshot(),
            "dispatcher": self.dispatcher.snapshot(),
            "result_cache": self.result_cache.snapshot(),
            "plan_cache": self.plan_cache.snapshot(),
        }

    def healthz(self) -> dict[str, object]:
        return {
            "status": "ok",
            "uptime_s": time.time() - self.started_at,
            "graphs": len(self.registry.handles()),
            "queue_depth": self.scheduler.depth,
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _invalidate_graph(self, graph_fp: str) -> None:
        self.result_cache.invalidate_graph(graph_fp)
        self.plan_cache.invalidate_graph(graph_fp)

    def _recharge(self) -> None:
        """Re-point the governor at the service's live footprint."""
        total = (
            self.registry.resident_bytes
            + self.result_cache.current_bytes
            + self.plan_cache.current_bytes
        )
        self.governor.observe_words(total // 8)

    def _finish_failure(
        self, request: Request, message: str, *, state: str
    ) -> None:
        with self._jobs_lock:
            job = self._jobs.get(request.job_id)
        if job is None or job.done.is_set():
            return
        job.state = state
        job.error = message
        job.finished_at = time.time()
        job.done.set()

    def _loop(self) -> None:
        while not self._stop.is_set():
            batch, dead = self.scheduler.pop_batch(
                self.config.service_batch_max, timeout=self._POLL_S
            )
            for request in dead:
                if request.cancelled.is_set():
                    self._finish_failure(
                        request, "cancelled before dispatch", state=CANCELLED
                    )
                else:
                    self._finish_failure(
                        request,
                        "deadline-expired: request waited past its deadline",
                        state=EXPIRED,
                    )
            if not batch:
                continue
            handle = self.registry.by_fingerprint(batch[0].graph_fp)
            if handle is None:
                for request in batch:
                    self._finish_failure(
                        request, "graph was unregistered while queued",
                        state=FAILED,
                    )
                continue
            jobs: list[Job] = []
            for request in batch:
                with self._jobs_lock:
                    job = self._jobs.get(request.job_id)
                if job is not None:
                    job.state = RUNNING
                    jobs.append(job)
            outcomes = self.dispatcher.dispatch(handle, batch)
            now = time.time()
            for outcome in outcomes:
                with self._jobs_lock:
                    job = self._jobs.get(outcome.request.job_id)
                if job is None:
                    continue
                job.cached = outcome.cached
                job.coalesced = outcome.coalesced
                job.plan_hit = outcome.plan_hit
                if outcome.error is not None:
                    job.state = FAILED
                    job.error = outcome.error
                else:
                    job.state = DONE
                    job.result = outcome.result
                job.finished_at = now
                job.done.set()
            self._recharge()
