"""Stdlib HTTP face of the matching service (``python -m repro.serve``).

Dependency-free serving: a ``ThreadingHTTPServer`` whose handler
translates JSON bodies into :class:`~repro.service.MatchingService`
calls.  Handler threads only ever *submit and wait* — all matching work
happens on the service's dispatch thread and its per-graph engines — so
slow requests don't block the accept loop and the scheduler's admission
rules apply identically to HTTP and embedded callers.

Endpoints
---------
``GET  /healthz``       liveness + queue depth (+ degraded flag)
``GET  /metrics``       every counter (scheduler, dispatcher, caches,
                        governor, faults, state dir) as one JSON object
``GET  /graphs``        registered graphs (with version fingerprint,
                        lineage depth, and retired flag per entry)
``POST /graphs``        register a graph: ``{"graph": <spec>, "name"?}``
``POST /graphs/<name>/edges``
                        commit an edge delta against the head of the
                        named graph's version chain:
                        ``{"insert"?: [[u, v], ...],
                        "delete"?: [[u, v], ...], "directed"?: true}``
                        — returns the commit summary (new fingerprint,
                        cache promotion counts, pruned versions);
                        409 on a concurrent-commit conflict
``GET  /graphs/<name>/versions``
                        the retained version chain, oldest first
``POST /graphs/<name>/compare``
                        shadow-compare one query across a version
                        boundary: ``{"query": <spec>, "base"?: <fp>}``
                        — counts on base (default: the head's parent)
                        and head plus their delta
``POST /match``         ``{"graph": <fp|name|spec>, "query": <spec>,
                        "wait"?: true, "priority"?, "deadline_ms"?,
                        "materialize"?, "time_limit_ms"?,
                        "idempotency_key"?, "num_parts"?, "as_of"?}`` —
                        202 + job id when ``wait`` is false,
                        429 + reason when admission rejects,
                        503 + ``Retry-After`` in degraded mode or
                        when a cluster shard is below quorum;
                        ``as_of`` runs against a retained past version
``GET  /jobs/<id>``     job state / result (cluster jobs also carry
                        the serving ``replica`` and failover count)

The versioning endpoints (``/edges``, ``/versions``, ``/compare``,
``as_of``) are a single-rank service surface; against a cluster router
they answer 400 rather than mutating one replica's copy out from under
the ring.

Resilience guardrails (config-driven): each connection carries a socket
timeout of ``service_request_timeout_s`` so a stalled peer cannot pin a
handler thread forever (a mid-body stall gets 408 and the connection is
closed), and request bodies above ``service_max_body_bytes`` are
refused with 413 *before* any bytes are read.  ``deadline_ms`` may also
arrive as an ``X-Deadline-Ms`` header — proxies can attach deadlines
without rewriting bodies — and propagates through the scheduler into
the engine's cooperative wall-clock limit.

Graph specs are JSON: a pattern shorthand string (``"K5"``, ``"C6"``,
``"P4"``, ``"S5"`` — same grammar as the CLI), an explicit edge list
``{"edges": [[u, v], ...], "num_vertices"?, "name"?}``, or a whitelisted
generator ``{"generator": "mesh", "args": [8, 8]}``.

The handler duck-types its backend: ``--ranks N`` (with ``N > 1``)
serves a replicated :class:`~repro.service.cluster.ClusterService`
instead of a single :class:`~repro.service.MatchingService`, behind the
exact same endpoints — routing, failover, and quorum shedding are
invisible to clients except for the ``replica`` field on jobs and the
``shard-unavailable`` 503 reason.
"""

from __future__ import annotations

import argparse
import json
import sys
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

import numpy as np

from ..core.config import CuTSConfig
from ..graph.build import from_edges
from ..graph.csr import CSRGraph, GraphFormatError
from ..graph.generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    mesh_graph,
    random_graph,
    social_graph,
    star_graph,
)
from ..versioning.delta import DeltaError
from .cluster import ClusterService
from .faults import ServiceFaultPlan
from .registry import VersionConflictError
from .scheduler import AdmissionError
from .service import MatchingService

__all__ = [
    "BadRequest",
    "PayloadTooLarge",
    "ServiceHTTPServer",
    "main",
    "parse_graph_spec",
    "serve",
]

_GENERATORS = {
    "mesh": mesh_graph,
    "chain": chain_graph,
    "clique": clique_graph,
    "star": star_graph,
    "cycle": cycle_graph,
    "random": random_graph,
    "social": social_graph,
}

_PATTERNS = {
    "K": clique_graph,
    "C": cycle_graph,
    "P": chain_graph,
    "S": star_graph,
}


class BadRequest(ValueError):
    """A request body that cannot be turned into work."""


class PayloadTooLarge(ValueError):
    """A declared request body above ``service_max_body_bytes``."""


def _pattern_graph(spec: str) -> CSRGraph:
    if len(spec) >= 2 and spec[0] in _PATTERNS and spec[1:].isdigit():
        return _PATTERNS[spec[0]](int(spec[1:]))
    raise BadRequest(
        f"unknown pattern {spec!r}: expected K<n>/C<n>/P<n>/S<n>"
    )


def parse_graph_spec(spec: Any) -> CSRGraph:
    """Materialise a JSON graph spec (see module docstring)."""
    if isinstance(spec, str):
        return _pattern_graph(spec)
    if not isinstance(spec, dict):
        raise BadRequest("graph spec must be a string or an object")
    if "pattern" in spec:
        return _pattern_graph(str(spec["pattern"]))
    if "edges" in spec:
        edges = spec["edges"]
        if not isinstance(edges, list):
            raise BadRequest("'edges' must be a list of [u, v] pairs")
        try:
            graph = from_edges(
                np.asarray(edges, dtype=np.int64).reshape(-1, 2)
                if edges
                else [],
                num_vertices=spec.get("num_vertices"),
                name=str(spec.get("name", "graph")),
            )
        except (ValueError, GraphFormatError) as exc:
            raise BadRequest(f"bad edge list: {exc}")
        labels = spec.get("labels")
        if labels is not None:
            graph = graph.with_labels(
                np.asarray(labels, dtype=np.int64)
            )
        return graph
    if "generator" in spec:
        kind = str(spec["generator"])
        maker = _GENERATORS.get(kind)
        if maker is None:
            raise BadRequest(
                f"unknown generator {kind!r}: one of {sorted(_GENERATORS)}"
            )
        args = spec.get("args", [])
        kwargs = spec.get("kwargs", {})
        if not isinstance(args, list) or not isinstance(kwargs, dict):
            raise BadRequest("'args' must be a list and 'kwargs' an object")
        try:
            return maker(*args, **kwargs)
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad generator arguments: {exc}")
    raise BadRequest(
        "graph spec needs one of 'pattern', 'edges', or 'generator'"
    )


class _Handler(BaseHTTPRequestHandler):
    """JSON request handler; the service hangs off the server object."""

    server: "ServiceHTTPServer"
    protocol_version = "HTTP/1.1"

    # -------------------------------------------------------------- util
    @property
    def service(self) -> MatchingService | ClusterService:
        return self.server.service

    def setup(self) -> None:
        # A stalled peer must not pin this handler thread: the
        # per-connection socket timeout turns a dead read into a
        # TimeoutError the request loop can answer (408) and close.
        self.timeout = self.server.request_timeout_s
        super().setup()

    def log_message(self, format: str, *args: Any) -> None:
        if self.server.verbose:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(
        self,
        status: int,
        payload: dict[str, Any],
        headers: dict[str, str] | None = None,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict[str, Any]:
        length = int(self.headers.get("Content-Length", "0"))
        cap = self.server.max_body_bytes
        if length > cap:
            raise PayloadTooLarge(
                f"request body declares {length} bytes; "
                f"service_max_body_bytes is {cap}"
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            payload = json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise BadRequest("request body must be a JSON object")
        return payload

    # ---------------------------------------------------------- routing
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            if self.path == "/healthz":
                self._send_json(200, self.service.healthz())
            elif self.path == "/metrics":
                self._send_json(200, self.service.metrics())
            elif self.path == "/graphs":
                self._send_json(200, {"graphs": self.service.graphs()})
            elif self.path.startswith("/graphs/") and self.path.endswith(
                "/versions"
            ):
                name = self.path[len("/graphs/"):-len("/versions")]
                self._get_versions(name)
            elif self.path.startswith("/jobs/"):
                self._get_job(self.path[len("/jobs/"):])
            else:
                self._send_json(404, {"error": f"no route {self.path!r}"})
        except BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": str(exc)})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        try:
            body = self._read_body()
            if self.path == "/graphs":
                self._post_graph(body)
            elif self.path == "/match":
                self._post_match(body)
            elif self.path.startswith("/graphs/") and self.path.endswith(
                "/edges"
            ):
                name = self.path[len("/graphs/"):-len("/edges")]
                self._post_edges(name, body)
            elif self.path.startswith("/graphs/") and self.path.endswith(
                "/compare"
            ):
                name = self.path[len("/graphs/"):-len("/compare")]
                self._post_compare(name, body)
            else:
                self._send_json(404, {"error": f"no route {self.path!r}"})
        except PayloadTooLarge as exc:
            self._send_json(413, {"error": str(exc)})
        except BadRequest as exc:
            self._send_json(400, {"error": str(exc)})
        except AdmissionError as exc:
            # Degraded read-only mode and a below-quorum shard are
            # service conditions (503, try again once they heal); the
            # admission limits are a client pacing problem (429).  All
            # carry Retry-After so the self-healing client can back off
            # precisely — the rejecting layer's own estimate when it
            # gave one (the cluster router knows its heal cadence).
            status = (
                503
                if exc.reason in ("degraded", "shard-unavailable")
                else 429
            )
            retry_after = (
                exc.retry_after if exc.retry_after is not None else 1.0
            )
            self._send_json(
                status,
                {"error": "rejected", "reason": exc.reason,
                 "detail": str(exc)},
                headers={"Retry-After": f"{retry_after:g}"},
            )
        except TimeoutError:
            # The peer stalled mid-body past service_request_timeout_s.
            try:
                self._send_json(
                    408, {"error": "timed out reading request body"}
                )
            finally:
                self.close_connection = True
        except Exception as exc:  # pragma: no cover - defensive
            self._send_json(500, {"error": str(exc)})

    # --------------------------------------------------------- handlers
    def _get_job(self, job_id: str) -> None:
        try:
            job = self.service.job(job_id)
        except KeyError:
            self._send_json(404, {"error": f"no job {job_id!r}"})
            return
        self._send_json(200, job.to_json())

    def _post_graph(self, body: dict[str, Any]) -> None:
        if "graph" not in body:
            raise BadRequest("body needs a 'graph' spec")
        graph = parse_graph_spec(body["graph"])
        name = body.get("name")
        fp = self.service.register_graph(
            graph, str(name) if name is not None else None
        )
        self._send_json(200, self.service.graph_info(fp))

    def _require_single(self) -> MatchingService:
        """The single-rank backend, or 400: versioning endpoints must
        not mutate one replica's copy out from under the cluster ring."""
        if not isinstance(self.service, MatchingService):
            raise BadRequest(
                "graph versioning endpoints (/edges, /versions, /compare,"
                " as_of) are served by a single-rank service, not the"
                " cluster router"
            )
        return self.service

    @staticmethod
    def _edge_array(value: Any, field: str) -> np.ndarray:
        if value is None:
            value = []
        if not isinstance(value, list):
            raise BadRequest(f"'{field}' must be a list of [u, v] pairs")
        try:
            return (
                np.asarray(value, dtype=np.int64).reshape(-1, 2)
                if value
                else np.zeros((0, 2), dtype=np.int64)
            )
        except (TypeError, ValueError) as exc:
            raise BadRequest(f"bad '{field}' edge list: {exc}")

    def _post_edges(self, name: str, body: dict[str, Any]) -> None:
        service = self._require_single()
        inserts = self._edge_array(
            body.get("insert", body.get("inserts")), "insert"
        )
        deletes = self._edge_array(
            body.get("delete", body.get("deletes")), "delete"
        )
        try:
            summary = service.mutate_graph(
                name,
                inserts=inserts,
                deletes=deletes,
                directed=bool(body.get("directed", True)),
            )
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
            return
        except (DeltaError, GraphFormatError, ValueError) as exc:
            raise BadRequest(str(exc))
        except VersionConflictError as exc:
            self._send_json(409, {"error": str(exc)})
            return
        self._send_json(200, summary)

    def _get_versions(self, name: str) -> None:
        service = self._require_single()
        try:
            versions = service.versions(name)
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
            return
        self._send_json(200, {"graph": name, "versions": versions})

    def _post_compare(self, name: str, body: dict[str, Any]) -> None:
        service = self._require_single()
        if "query" not in body:
            raise BadRequest("body needs a 'query' spec")
        query = parse_graph_spec(body["query"])
        base = body.get("base")
        timeout = body.get("timeout_s")
        try:
            summary = service.compare(
                name,
                query,
                base=str(base) if base is not None else None,
                timeout=float(timeout) if timeout is not None else None,
            )
        except KeyError as exc:
            self._send_json(404, {"error": str(exc)})
            return
        self._send_json(200, summary)

    def _resolve_graph_arg(self, spec: Any) -> str:
        """A /match 'graph' value: fingerprint, name, or inline spec."""
        if isinstance(spec, str):
            try:
                return self.service.resolve_key(spec)
            except KeyError:
                # Not a registered key — maybe a pattern shorthand.
                return self.service.register_graph(_pattern_graph(spec))
        return self.service.register_graph(parse_graph_spec(spec))

    def _post_match(self, body: dict[str, Any]) -> None:
        if "graph" not in body or "query" not in body:
            raise BadRequest("body needs 'graph' and 'query'")
        graph_fp = self._resolve_graph_arg(body["graph"])
        query = parse_graph_spec(body["query"])
        deadline_ms = body.get("deadline_ms")
        if deadline_ms is None:
            header = self.headers.get("X-Deadline-Ms")
            if header is not None:
                try:
                    deadline_ms = float(header)
                except ValueError:
                    raise BadRequest(
                        f"X-Deadline-Ms header is not a number: {header!r}"
                    )
        time_limit_ms = body.get("time_limit_ms")
        idempotency_key = body.get("idempotency_key")
        extra: dict[str, Any] = {}
        num_parts = int(body.get("num_parts", 1))
        if num_parts != 1:
            # The cluster stripes the query across its shard's replicas
            # (resuming on survivors); a single service computes one
            # strided part — "part" selects which (router use only).
            extra["num_parts"] = num_parts
        if "part" in body:
            if not isinstance(self.service, MatchingService):
                raise BadRequest(
                    "'part' selects one stride of a single-rank service;"
                    " against a cluster send 'num_parts' and let the"
                    " router stripe the query"
                )
            extra["part"] = int(body["part"])
        as_of = body.get("as_of")
        if as_of is not None:
            self._require_single()
            extra["as_of"] = str(as_of)
        try:
            job_id = self.service.submit(
                graph_fp,
                query,
                priority=int(body.get("priority", 0)),
                deadline_ms=(
                    float(deadline_ms) if deadline_ms is not None else None
                ),
                materialize=bool(body.get("materialize", False)),
                time_limit_ms=(
                    float(time_limit_ms) if time_limit_ms is not None else None
                ),
                idempotency_key=(
                    str(idempotency_key) if idempotency_key is not None
                    else None
                ),
                **extra,
            )
        except KeyError as exc:
            # An unknown graph key or a pruned/foreign as_of version.
            self._send_json(404, {"error": str(exc)})
            return
        if not body.get("wait", True):
            self._send_json(202, {"job_id": job_id})
            return
        timeout = body.get("timeout_s")
        job = self.service.wait(
            job_id, timeout=float(timeout) if timeout is not None else None
        )
        status = 200 if job.done.is_set() else 504
        self._send_json(status, job.to_json())


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one service backend — a single
    :class:`MatchingService` or a replicated :class:`ClusterService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: MatchingService | ClusterService,
        *,
        verbose: bool = False,
    ) -> None:
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose
        self.request_timeout_s = service.config.service_request_timeout_s
        self.max_body_bytes = service.config.service_max_body_bytes


def serve(
    service: MatchingService | ClusterService,
    host: str = "127.0.0.1",
    port: int = 0,
    *,
    verbose: bool = False,
) -> ServiceHTTPServer:
    """Bind (``port=0`` = ephemeral) without blocking; the caller runs
    ``serve_forever`` (or drives ``handle_request`` in tests)."""
    return ServiceHTTPServer((host, port), service, verbose=verbose)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.serve`` entry point."""
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="serve subgraph-isomorphism matching over HTTP",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8080,
        help="TCP port (0 = pick an ephemeral port and print it)",
    )
    parser.add_argument(
        "--workers", default=None, metavar="N|auto",
        help="worker processes per graph engine (default: config)",
    )
    parser.add_argument(
        "--ranks", type=int, default=None, metavar="N",
        help="service replicas; N > 1 serves a shard-routed cluster "
        "that fails over across replicas on rank crashes "
        "(default: config service_ranks)",
    )
    parser.add_argument(
        "--replication", type=int, default=None, metavar="R",
        help="replicas per graph shard (clamped to --ranks; "
        "default: config service_replication)",
    )
    parser.add_argument(
        "--route-timeout-s", type=float, default=None, metavar="S",
        help="per-attempt routing timeout before the cluster fails "
        "over to the next replica",
    )
    parser.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="admission bound on queued requests",
    )
    parser.add_argument(
        "--cache-bytes", type=int, default=None, metavar="B",
        help="result/plan cache budget in bytes",
    )
    parser.add_argument(
        "--max-query-vertices", type=int, default=None, metavar="N",
        help="reject queries larger than N vertices (admission control)",
    )
    parser.add_argument(
        "--memory-budget-mb", type=int, default=None, metavar="MB",
        help="governor budget; admission rejects past it",
    )
    parser.add_argument(
        "--max-versions", type=int, default=None, metavar="N",
        help="retained versions per mutable graph (as_of targets); "
        "commits past this depth prune the oldest version "
        "(default: config versioning_max_versions)",
    )
    parser.add_argument(
        "--no-incremental", action="store_true",
        help="disable incremental re-matching on version commits "
        "(every post-commit cache miss runs a full match)",
    )
    parser.add_argument(
        "--preload", action="append", default=[], metavar="SPEC",
        help="register a graph at boot (pattern like K5, or "
        "generator:mesh:8,8); repeatable",
    )
    parser.add_argument(
        "--state-dir", default=None, metavar="DIR",
        help="durable journal + graph manifest; restarts recover "
        "graphs, pending jobs, and terminal results from it",
    )
    parser.add_argument(
        "--faults", default=None, metavar="SPEC",
        help="deterministic fault plan, key=value[,key=value...] "
        "(keys: seed, engine_fault_prob, stall_prob, stall_ms, "
        "worker_kill_prob, cache_corrupt_prob, oom_prob, oom_pressure, "
        "oom_hold_ticks, rank_crash_prob, partition_prob, "
        "partition_ticks, slow_replica_prob, slow_replica_ms); "
        "default: $REPRO_SERVICE_FAULTS",
    )
    parser.add_argument(
        "--request-timeout-s", type=float, default=None, metavar="S",
        help="per-connection socket timeout",
    )
    parser.add_argument(
        "--max-body-bytes", type=int, default=None, metavar="B",
        help="reject request bodies above B bytes with 413",
    )
    parser.add_argument("--verbose", action="store_true")
    args = parser.parse_args(argv)

    overrides: dict[str, Any] = {}
    if args.queue_depth is not None:
        overrides["service_queue_depth"] = args.queue_depth
    if args.cache_bytes is not None:
        overrides["service_cache_bytes"] = args.cache_bytes
    if args.max_query_vertices is not None:
        overrides["service_max_query_vertices"] = args.max_query_vertices
    if args.memory_budget_mb is not None:
        overrides["memory_budget_mb"] = args.memory_budget_mb
    if args.request_timeout_s is not None:
        overrides["service_request_timeout_s"] = args.request_timeout_s
    if args.max_body_bytes is not None:
        overrides["service_max_body_bytes"] = args.max_body_bytes
    if args.ranks is not None:
        overrides["service_ranks"] = args.ranks
    if args.replication is not None:
        overrides["service_replication"] = args.replication
    if args.route_timeout_s is not None:
        overrides["service_route_timeout_s"] = args.route_timeout_s
    if args.max_versions is not None:
        overrides["versioning_max_versions"] = args.max_versions
    if args.no_incremental:
        overrides["versioning_incremental"] = False
    config = CuTSConfig(**overrides)

    plan = (
        ServiceFaultPlan.from_spec(args.faults)
        if args.faults is not None
        else ServiceFaultPlan.from_env()
    )
    faults = None if plan is None or plan.is_null else plan
    service: MatchingService | ClusterService
    if config.service_ranks > 1:
        service = ClusterService(
            config,
            workers=args.workers,
            state_dir=args.state_dir,
            faults=faults,
        )
    else:
        service = MatchingService(
            config,
            workers=args.workers,
            state_dir=args.state_dir,
            faults=faults,
        )
    for spec in args.preload:
        if spec.startswith("generator:"):
            _, kind, raw = spec.split(":", 2)
            gen_args = [int(x) for x in raw.split(",") if x]
            graph = parse_graph_spec(
                {"generator": kind, "args": gen_args}
            )
        else:
            graph = parse_graph_spec(spec)
        service.register_graph(graph)

    server = serve(service, args.host, args.port, verbose=args.verbose)
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port}", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        print("interrupted; shutting down", flush=True)
    finally:
        server.server_close()
        service.close()
    return 0
