"""Self-healing stdlib client for a running ``repro.serve`` endpoint.

Mirrors the embedded :class:`~repro.service.MatchingService` surface
over HTTP: register graphs, submit matches (blocking or async), poll
jobs, read health and metrics.  Uses only :mod:`urllib`, so scripts and
CI smoke tests need nothing beyond the interpreter.

HTTP errors carry the server's JSON body: an admission rejection
surfaces as :class:`ServiceError` with ``status == 429`` (or ``503``
for degraded mode) and ``reason`` set to the machine-readable admission
code (``queue-full`` / ``oversized-query`` / ``memory-budget`` /
``degraded`` / ``shutdown``).  Transport-level failures — connection
refused, a connection dropped mid-body, a response that is not valid
JSON — surface with ``status == 0``.

The client heals itself rather than surfacing every transient blip:

* a :class:`RetryPolicy` retries transient failures (transport errors,
  502/503/504, and 429s whose reason is load — never ``oversized-query``
  or other caller bugs) with capped exponential backoff plus
  deterministic jitter, honouring a server ``Retry-After`` when one is
  sent;
* every ``/match`` carries an **idempotency key** (caller-supplied or
  auto-generated once per logical request) that is reused verbatim
  across retries, so a retry after an ambiguous failure can never make
  the server count the same query twice;
* a rolling-window :class:`CircuitBreaker` fails fast (``reason ==
  "circuit-open"``) while the server is clearly down, then lets one
  probe through after a cooldown (half-open) and closes again on its
  success.
"""

from __future__ import annotations

import http.client
import json
import random
import time
import urllib.error
import urllib.request
import uuid
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable

from ..analysis.sanitizer import make_lock
from ..graph.csr import CSRGraph

__all__ = [
    "CircuitBreaker",
    "RetryPolicy",
    "ServiceClient",
    "ServiceError",
    "graph_to_spec",
]


class ServiceError(RuntimeError):
    """A non-2xx response, with the server's status and reason code.

    ``status == 0`` marks transport-level failures (unreachable host,
    mid-body disconnect, malformed response body, open circuit).
    ``retry_after`` carries the server's ``Retry-After`` header in
    seconds when one was sent.  ``replica`` is the cluster rank the
    request was routed to when the server reported one — against a
    replicated service it says *which* replica produced the failure.
    """

    def __init__(
        self,
        status: int,
        message: str,
        reason: str | None = None,
        retry_after: float | None = None,
        replica: int | None = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason
        self.retry_after = retry_after
        self.replica = replica


def graph_to_spec(graph: CSRGraph) -> dict[str, Any]:
    """Serialise a :class:`CSRGraph` into the wire graph-spec form."""
    spec: dict[str, Any] = {
        "edges": [[int(u), int(v)] for u, v in graph.edge_list()],
        "num_vertices": int(graph.num_vertices),
        "name": graph.name,
    }
    if graph.labels is not None:
        spec["labels"] = [int(x) for x in graph.labels]
    return spec


@dataclass(frozen=True)
class RetryPolicy:
    """When and how the client retries a failed request.

    Backoff for attempt *k* (0-based) is ``backoff_base_s * 2**k``
    capped at ``backoff_cap_s``, stretched by up to ``jitter`` of
    itself (deterministic per-client via ``seed``).  A server
    ``Retry-After`` overrides the computed backoff (still capped).
    Only *transient* failures retry: transport errors (status 0),
    ``retry_statuses``, and 429s whose ``reason`` is in
    ``retry_reasons`` — a 429 for ``oversized-query`` is the caller's
    bug and retrying it would loop forever.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    jitter: float = 0.5
    retry_statuses: tuple[int, ...] = (502, 503, 504)
    retry_reasons: tuple[str, ...] = ("queue-full", "memory-budget", "degraded")
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base_s < 0 or self.backoff_cap_s < 0:
            raise ValueError("backoff durations must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be in [0, 1]")

    def should_retry(self, error: ServiceError) -> bool:
        if error.reason == "circuit-open":
            return False  # the breaker already decided; don't spin on it
        if error.status == 0:
            return True
        if error.status in self.retry_statuses:
            return True
        return error.status == 429 and error.reason in self.retry_reasons


class CircuitBreaker:
    """Rolling-window circuit breaker over one endpoint.

    Tracks the last ``window`` request outcomes; ``failure_threshold``
    failures among them opens the circuit, after which every request
    fails fast (``ServiceError`` with ``reason == "circuit-open"``)
    until ``cooldown_s`` has passed.  Then exactly one probe is let
    through (half-open): its success closes the circuit and clears the
    window, its failure re-opens it for another cooldown.  Only
    failures that indicate a *down server* count — transport errors and
    5xx; a 4xx proves the server is alive and records as a success.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        *,
        window: int = 16,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if window < 1:
            raise ValueError("window must be >= 1")
        if not 1 <= failure_threshold <= window:
            raise ValueError("failure_threshold must be in [1, window]")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.window = window
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = make_lock("CircuitBreaker._lock")
        self._events: deque[bool] = deque(maxlen=window)
        self.state = self.CLOSED
        self._opened_at = 0.0
        self.opens = 0
        self.fast_fails = 0

    def before_request(self) -> None:
        """Gate one request: raises ``circuit-open`` when failing fast,
        silently admits the single half-open probe otherwise."""
        with self._lock:
            if self.state == self.OPEN:
                if self._clock() - self._opened_at >= self.cooldown_s:
                    self.state = self.HALF_OPEN  # this caller is the probe
                    return
                self.fast_fails += 1
                raise ServiceError(
                    0,
                    f"circuit breaker open "
                    f"(cooldown {self.cooldown_s}s after "
                    f"{self.failure_threshold} failures)",
                    reason="circuit-open",
                )
            if self.state == self.HALF_OPEN:
                self.fast_fails += 1
                raise ServiceError(
                    0,
                    "circuit breaker half-open: probe already in flight",
                    reason="circuit-open",
                )

    def record_success(self) -> None:
        with self._lock:
            if self.state == self.HALF_OPEN:
                self._events.clear()
            self.state = self.CLOSED
            self._events.append(True)

    def record_failure(self) -> None:
        with self._lock:
            now = self._clock()
            if self.state == self.HALF_OPEN:
                self.state = self.OPEN
                self._opened_at = now
                return
            self._events.append(False)
            failures = sum(1 for ok in self._events if not ok)
            if self.state == self.CLOSED and failures >= self.failure_threshold:
                self.state = self.OPEN
                self._opened_at = now
                self.opens += 1

    def snapshot(self) -> dict[str, object]:
        with self._lock:
            return {
                "state": self.state,
                "window_failures": sum(1 for ok in self._events if not ok),
                "opens": self.opens,
                "fast_fails": self.fast_fails,
            }


class ServiceClient:
    """Talk to one ``repro.serve`` endpoint.

    >>> client = ServiceClient("http://127.0.0.1:8080")
    >>> fp = client.register_graph(mesh_graph(8, 8))
    >>> client.match(fp, "K3")["result"]["count"]

    Retries and the circuit breaker are on by default (see
    :class:`RetryPolicy` / :class:`CircuitBreaker`); pass
    ``RetryPolicy(max_attempts=1)`` to make every failure surface
    immediately.
    """

    def __init__(
        self,
        base_url: str,
        *,
        timeout: float = 30.0,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = breaker if breaker is not None else CircuitBreaker()
        self.retries = 0
        self._rng = random.Random(self.retry.seed)
        self._sleep: Callable[[float], None] = time.sleep

    # ------------------------------------------------------------------
    def _backoff_s(self, attempt: int, retry_after: float | None) -> float:
        if retry_after is not None:
            return min(max(retry_after, 0.0), self.retry.backoff_cap_s)
        base = min(
            self.retry.backoff_cap_s,
            self.retry.backoff_base_s * (2.0 ** attempt),
        )
        return base * (1.0 + self.retry.jitter * self._rng.random())

    def _request_once(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                raw = resp.read()
        except urllib.error.HTTPError as exc:
            raw_text = exc.read().decode("utf-8", errors="replace")
            try:
                payload = json.loads(raw_text)
            except json.JSONDecodeError:
                payload = {"error": raw_text}
            header = exc.headers.get("Retry-After")
            try:
                retry_after = float(header) if header is not None else None
            except ValueError:
                retry_after = None
            replica = payload.get("replica")
            raise ServiceError(
                exc.code,
                str(
                    payload.get("detail") or payload.get("error") or raw_text
                ),
                reason=payload.get("reason"),
                retry_after=retry_after,
                replica=int(replica) if replica is not None else None,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                0, f"cannot reach {self.base_url}: {exc.reason}"
            ) from None
        except (http.client.HTTPException, TimeoutError, OSError) as exc:
            # Connection dropped mid-response (e.g. the server was
            # killed between headers and body): ambiguous, transient.
            raise ServiceError(
                0, f"connection to {self.base_url} broke mid-response: {exc}"
            ) from None
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                0, f"malformed JSON response from {self.base_url}: {exc}"
            ) from None

    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        """One logical request: breaker-gated, retried per policy.

        The same ``body`` object is resent on every attempt — which is
        exactly what makes idempotency keys work: the server sees one
        key no matter how many wire-level tries it took.
        """
        attempt = 0
        while True:
            self.breaker.before_request()
            try:
                result = self._request_once(method, path, body)
            except ServiceError as exc:
                if exc.reason != "circuit-open":
                    if exc.status == 0 or exc.status >= 500:
                        self.breaker.record_failure()
                    else:
                        self.breaker.record_success()
                attempt += 1
                if attempt >= self.retry.max_attempts or not (
                    self.retry.should_retry(exc)
                ):
                    raise
                self.retries += 1
                self._sleep(self._backoff_s(attempt - 1, exc.retry_after))
                continue
            self.breaker.record_success()
            return result

    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def graphs(self) -> list[dict[str, Any]]:
        return list(self._request("GET", "/graphs")["graphs"])

    def register_graph(
        self, graph: CSRGraph | str | dict[str, Any], name: str | None = None
    ) -> str:
        """Register a graph (CSRGraph, pattern string, or raw spec);
        returns its content fingerprint.  Safe to retry: registration
        is content-addressed and idempotent server-side."""
        spec: Any = (
            graph_to_spec(graph) if isinstance(graph, CSRGraph) else graph
        )
        body: dict[str, Any] = {"graph": spec}
        if name is not None:
            body["name"] = name
        return str(self._request("POST", "/graphs", body)["fingerprint"])

    # ------------------------------------------------------------------
    # Versioned mutation / time travel
    # ------------------------------------------------------------------
    def mutate_edges(
        self,
        name: str,
        *,
        insert: list[list[int]] | None = None,
        delete: list[list[int]] | None = None,
        directed: bool = True,
    ) -> dict[str, Any]:
        """Commit an edge delta against the named graph's head version;
        returns the commit summary (child fingerprint, lineage depth,
        cache promotion counts, pruned versions).

        Safe to retry after an ambiguous failure: the server normalises
        the delta against the *current* head, so replaying a commit
        that already landed drops every already-present insert and
        already-absent delete and reduces to a no-op commit
        (``changed: false``) — it can never fork the chain or apply
        twice.  A 409 means someone else committed concurrently; re-read
        the head before deciding to retry.
        """
        body: dict[str, Any] = {"directed": directed}
        if insert:
            body["insert"] = insert
        if delete:
            body["delete"] = delete
        return self._request("POST", f"/graphs/{name}/edges", body)

    def versions(self, name: str) -> list[dict[str, Any]]:
        """The retained version chain of a named graph, oldest first;
        each entry carries ``fingerprint``, ``parent_fingerprint``,
        ``lineage_depth``, ``retired``, and ``head``."""
        return list(
            self._request("GET", f"/graphs/{name}/versions")["versions"]
        )

    def compare(
        self,
        name: str,
        query: CSRGraph | str | dict[str, Any],
        *,
        base: str | None = None,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        """Shadow-compare ``query`` across a version boundary of the
        named graph (base defaults to the head's parent); returns both
        counts and their delta."""
        body: dict[str, Any] = {
            "query": (
                graph_to_spec(query) if isinstance(query, CSRGraph) else query
            ),
        }
        if base is not None:
            body["base"] = base
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._request("POST", f"/graphs/{name}/compare", body)

    # ------------------------------------------------------------------
    def match(
        self,
        graph: CSRGraph | str | dict[str, Any],
        query: CSRGraph | str | dict[str, Any],
        *,
        wait: bool = True,
        priority: int = 0,
        deadline_ms: float | None = None,
        materialize: bool = False,
        time_limit_ms: float | None = None,
        timeout_s: float | None = None,
        idempotency_key: str | None = None,
        num_parts: int = 1,
        as_of: str | None = None,
    ) -> dict[str, Any]:
        """Submit one match.  ``wait=True`` returns the finished job
        JSON; ``wait=False`` returns ``{"job_id": ...}`` immediately.
        ``as_of`` time-travels the request to a retained past version
        of the named graph (404 for pruned or foreign fingerprints).

        An ``idempotency_key`` is generated when not supplied and sent
        on every retry of this call, so the server deduplicates — a
        retry after an ambiguous failure can never double-count.
        """
        if idempotency_key is None:
            idempotency_key = uuid.uuid4().hex
        body: dict[str, Any] = {
            "graph": (
                graph_to_spec(graph) if isinstance(graph, CSRGraph) else graph
            ),
            "query": (
                graph_to_spec(query) if isinstance(query, CSRGraph) else query
            ),
            "wait": wait,
            "priority": priority,
            "materialize": materialize,
            "idempotency_key": idempotency_key,
        }
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        if time_limit_ms is not None:
            body["time_limit_ms"] = time_limit_ms
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        if num_parts != 1:
            # Against a cluster the router stripes the query across its
            # shard's replicas and resumes surviving parts on failure.
            body["num_parts"] = num_parts
        if as_of is not None:
            body["as_of"] = as_of
        return self._request("POST", "/match", body)

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def wait_job(
        self, job_id: str, *, timeout: float = 60.0, poll_s: float = 0.05
    ) -> dict[str, Any]:
        """Poll ``/jobs/<id>`` until it leaves pending/running."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] not in ("pending", "running"):
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0, f"job {job_id} still {payload['state']} "
                    f"after {timeout}s"
                )
            time.sleep(poll_s)
