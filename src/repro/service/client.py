"""Tiny stdlib client for a running ``repro.serve`` endpoint.

Mirrors the embedded :class:`~repro.service.MatchingService` surface
over HTTP: register graphs, submit matches (blocking or async), poll
jobs, read health and metrics.  Uses only :mod:`urllib`, so scripts and
CI smoke tests need nothing beyond the interpreter.

HTTP errors carry the server's JSON body: an admission rejection
surfaces as :class:`ServiceError` with ``status == 429`` and
``reason`` set to the machine-readable admission code
(``queue-full`` / ``oversized-query`` / ``memory-budget`` /
``shutdown``).
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any

from ..graph.csr import CSRGraph

__all__ = ["ServiceClient", "ServiceError", "graph_to_spec"]


class ServiceError(RuntimeError):
    """A non-2xx response, with the server's status and reason code."""

    def __init__(
        self, status: int, message: str, reason: str | None = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.reason = reason


def graph_to_spec(graph: CSRGraph) -> dict[str, Any]:
    """Serialise a :class:`CSRGraph` into the wire graph-spec form."""
    spec: dict[str, Any] = {
        "edges": [[int(u), int(v)] for u, v in graph.edge_list()],
        "num_vertices": int(graph.num_vertices),
        "name": graph.name,
    }
    if graph.labels is not None:
        spec["labels"] = [int(x) for x in graph.labels]
    return spec


class ServiceClient:
    """Talk to one ``repro.serve`` endpoint.

    >>> client = ServiceClient("http://127.0.0.1:8080")
    >>> fp = client.register_graph(mesh_graph(8, 8))
    >>> client.match(fp, "K3")["result"]["count"]
    """

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: dict[str, Any] | None = None,
    ) -> dict[str, Any]:
        data = (
            json.dumps(body).encode("utf-8") if body is not None else None
        )
        req = urllib.request.Request(
            self.base_url + path,
            data=data,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.loads(resp.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raw = exc.read().decode("utf-8", errors="replace")
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                payload = {"error": raw}
            raise ServiceError(
                exc.code,
                str(payload.get("detail") or payload.get("error") or raw),
                reason=payload.get("reason"),
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(0, f"cannot reach {self.base_url}: {exc.reason}")

    # ------------------------------------------------------------------
    def healthz(self) -> dict[str, Any]:
        return self._request("GET", "/healthz")

    def metrics(self) -> dict[str, Any]:
        return self._request("GET", "/metrics")

    def graphs(self) -> list[dict[str, Any]]:
        return list(self._request("GET", "/graphs")["graphs"])

    def register_graph(
        self, graph: CSRGraph | str | dict[str, Any], name: str | None = None
    ) -> str:
        """Register a graph (CSRGraph, pattern string, or raw spec);
        returns its content fingerprint."""
        spec: Any = (
            graph_to_spec(graph) if isinstance(graph, CSRGraph) else graph
        )
        body: dict[str, Any] = {"graph": spec}
        if name is not None:
            body["name"] = name
        return str(self._request("POST", "/graphs", body)["fingerprint"])

    # ------------------------------------------------------------------
    def match(
        self,
        graph: CSRGraph | str | dict[str, Any],
        query: CSRGraph | str | dict[str, Any],
        *,
        wait: bool = True,
        priority: int = 0,
        deadline_ms: float | None = None,
        materialize: bool = False,
        time_limit_ms: float | None = None,
        timeout_s: float | None = None,
    ) -> dict[str, Any]:
        """Submit one match.  ``wait=True`` returns the finished job
        JSON; ``wait=False`` returns ``{"job_id": ...}`` immediately."""
        body: dict[str, Any] = {
            "graph": (
                graph_to_spec(graph) if isinstance(graph, CSRGraph) else graph
            ),
            "query": (
                graph_to_spec(query) if isinstance(query, CSRGraph) else query
            ),
            "wait": wait,
            "priority": priority,
            "materialize": materialize,
        }
        if deadline_ms is not None:
            body["deadline_ms"] = deadline_ms
        if time_limit_ms is not None:
            body["time_limit_ms"] = time_limit_ms
        if timeout_s is not None:
            body["timeout_s"] = timeout_s
        return self._request("POST", "/match", body)

    def job(self, job_id: str) -> dict[str, Any]:
        return self._request("GET", f"/jobs/{job_id}")

    def wait_job(
        self, job_id: str, *, timeout: float = 60.0, poll_s: float = 0.05
    ) -> dict[str, Any]:
        """Poll ``/jobs/<id>`` until it leaves pending/running."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] not in ("pending", "running"):
                return payload
            if time.monotonic() >= deadline:
                raise ServiceError(
                    0, f"job {job_id} still {payload['state']} "
                    f"after {timeout}s"
                )
            time.sleep(poll_s)
