"""Matching service: the cuTS engine as a long-lived query server.

Every pre-existing entry point is one-shot — each call re-loads the
data graph, re-plans the query, and recomputes answers computed moments
ago.  The paper's own economics (trie reuse, chunked BFS–DFS, strided
work placement, §4) argue for amortizing graph-resident state across
many queries; this package is that argument applied at serving scale:

* :class:`GraphRegistry` — each data graph loaded once, fingerprint-
  keyed, with a persistent engine per graph (shared-memory segment +
  process pool under ``workers > 1``);
* :class:`Scheduler` — bounded priority queue, per-request deadlines
  and cancellation, admission control that rejects with a reason
  (queue depth, oversized query, memory budget) instead of dropping;
* :class:`Dispatcher` — same-graph requests coalesced and batched into
  a single :meth:`ParallelMatcher.match_many
  <repro.parallel.ParallelMatcher.match_many>` pool pass, results
  demultiplexed per request;
* :class:`LRUBytesCache` — result + plan cache keyed by
  ``(graph fp, query fp, count-relevant config fp)``, byte-budgeted,
  charged against the memory governor, explicitly invalidated on graph
  re-registration.

Resilience (DESIGN.md §12): :class:`ServiceState` journals graphs and
job transitions durably so ``--state-dir`` restarts recover them;
:class:`ServiceFaultPlan` / :class:`ServiceFaultInjector` inject
deterministic faults end-to-end for chaos testing; the client heals
itself with :class:`RetryPolicy` backoff, idempotency keys, and a
:class:`CircuitBreaker`.

Versioned mutation (DESIGN.md §16): registered graphs are **mutable
through immutable versions** — ``POST /graphs/<name>/edges`` commits an
edge delta built by a non-mutating overlay splice, the name advances to
the content-addressed child fingerprint, and retained ancestors stay
servable (``as_of`` time travel, shadow ``/compare``).  Result-cache
entries provably outside the commit's dirty ball are *promoted* to the
child fingerprint instead of invalidated, and a post-commit miss whose
parent entry survives is served by incremental re-matching
(:mod:`repro.versioning`) — dirty-ball re-execution plus an arithmetic
merge, equivalence-gated against the full match.

Scale-out (DESIGN.md §15): :class:`ClusterService` replicates the
service across N ranks behind a consistent-hash router
(:class:`HashRing`) with R-way replication per graph shard — requests
fail over across replicas with exactly-once integration, oversized
split queries resume on survivors, and below-quorum shards shed load
with machine-readable 503s until a replacement replica catches up.

Faces: :class:`MatchingService` (embedded Python API),
``python -m repro.serve`` (stdlib HTTP, :mod:`repro.service.http`;
``--ranks N`` serves a :class:`ClusterService`), and
:class:`ServiceClient` (:mod:`repro.service.client`).
"""

from .cache import LRUBytesCache
from .cluster import ClusterJob, ClusterRank, ClusterService, HashRing
from .client import (
    CircuitBreaker,
    RetryPolicy,
    ServiceClient,
    ServiceError,
)
from .dispatcher import Dispatcher
from .faults import (
    InjectedEngineFault,
    ServiceFaultInjector,
    ServiceFaultPlan,
)
from .registry import (
    GraphHandle,
    GraphRegistry,
    VersionCommit,
    VersionConflictError,
)
from .scheduler import AdmissionError, Request, Scheduler
from .service import DeadlineExpired, Job, JobFailed, MatchingService
from .state import ServiceState

__all__ = [
    "AdmissionError",
    "CircuitBreaker",
    "ClusterJob",
    "ClusterRank",
    "ClusterService",
    "DeadlineExpired",
    "Dispatcher",
    "HashRing",
    "GraphHandle",
    "GraphRegistry",
    "InjectedEngineFault",
    "Job",
    "JobFailed",
    "LRUBytesCache",
    "MatchingService",
    "Request",
    "RetryPolicy",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "ServiceFaultInjector",
    "ServiceFaultPlan",
    "ServiceState",
    "VersionCommit",
    "VersionConflictError",
]
