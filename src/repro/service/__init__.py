"""Matching service: the cuTS engine as a long-lived query server.

Every pre-existing entry point is one-shot — each call re-loads the
data graph, re-plans the query, and recomputes answers computed moments
ago.  The paper's own economics (trie reuse, chunked BFS–DFS, strided
work placement, §4) argue for amortizing graph-resident state across
many queries; this package is that argument applied at serving scale:

* :class:`GraphRegistry` — each data graph loaded once, fingerprint-
  keyed, with a persistent engine per graph (shared-memory segment +
  process pool under ``workers > 1``);
* :class:`Scheduler` — bounded priority queue, per-request deadlines
  and cancellation, admission control that rejects with a reason
  (queue depth, oversized query, memory budget) instead of dropping;
* :class:`Dispatcher` — same-graph requests coalesced and batched into
  a single :meth:`ParallelMatcher.match_many
  <repro.parallel.ParallelMatcher.match_many>` pool pass, results
  demultiplexed per request;
* :class:`LRUBytesCache` — result + plan cache keyed by
  ``(graph fp, query fp, count-relevant config fp)``, byte-budgeted,
  charged against the memory governor, explicitly invalidated on graph
  re-registration.

Faces: :class:`MatchingService` (embedded Python API),
``python -m repro.serve`` (stdlib HTTP, :mod:`repro.service.http`), and
:class:`ServiceClient` (:mod:`repro.service.client`).
"""

from .cache import LRUBytesCache
from .client import ServiceClient, ServiceError
from .dispatcher import Dispatcher
from .registry import GraphHandle, GraphRegistry
from .scheduler import AdmissionError, Request, Scheduler
from .service import DeadlineExpired, Job, JobFailed, MatchingService

__all__ = [
    "AdmissionError",
    "DeadlineExpired",
    "Dispatcher",
    "GraphHandle",
    "GraphRegistry",
    "Job",
    "JobFailed",
    "LRUBytesCache",
    "MatchingService",
    "Request",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
]
