"""Bounded priority scheduler with admission control.

A server that "serves heavy traffic" needs a front door that says **no**
early and legibly, not a queue that grows until the host dies.  Three
admission rules run synchronously at submit, each rejecting with a
machine-readable reason (never a silent drop):

* ``queue-full`` — the bounded queue is at ``service_queue_depth``;
* ``oversized-query`` — the query exceeds
  ``service_max_query_vertices`` (when set);
* ``memory-budget`` — the :class:`~repro.core.governor.MemoryGovernor`
  reports pressure at or past its budget (registered graphs plus live
  cache bytes already fill it).

Admitted requests wait in a priority heap (lower ``priority`` value
first, FIFO within a priority).  Each request may carry a **deadline**:
if the dispatcher has not picked it up by then it expires and its job
fails with ``deadline-expired`` — late work is dropped at the cheapest
possible point, before any matcher runs.  Pending requests can also be
**cancelled**; cancellation wins the race against dispatch the same way.

Batch pops are graph-affine: the head request is taken together with
every queued request for the *same* data graph (up to
``service_batch_max``), which is what lets the dispatcher turn a burst
of same-graph traffic into one batched matcher pass.  Requests for
other graphs are pushed back untouched, preserving their order.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass, field

from ..analysis.sanitizer import make_condition
from ..core.governor import MemoryGovernor
from ..graph.csr import CSRGraph

__all__ = ["AdmissionError", "Request", "Scheduler"]


class AdmissionError(RuntimeError):
    """A request was rejected at the front door, with a reason code.

    ``retry_after`` (seconds) is set when the rejecting layer knows how
    long the condition is expected to last — the cluster router sets it
    on ``shard-unavailable`` so the HTTP face can send a precise
    ``Retry-After`` header.
    """

    def __init__(
        self,
        reason: str,
        message: str,
        *,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


@dataclass
class Request:
    """One admitted unit of work, as the scheduler and dispatcher see it."""

    job_id: str
    graph_fp: str
    query: CSRGraph
    query_fp: str
    materialize: bool = False
    time_limit_ms: float | None = None
    priority: int = 0
    deadline: float | None = None  # absolute time.monotonic() instant
    seq: int = 0
    # Strided sub-query: execute only roots[part::num_parts] (the same
    # striding CuTSMatcher.match exposes).  The cluster router splits
    # one oversized query into num_parts such requests across replicas;
    # summing the part counts is exact because the root sets partition.
    part: int = 0
    num_parts: int = 1
    cancelled: threading.Event = field(default_factory=threading.Event)


class Scheduler:
    """Bounded priority queue + admission control + deadlines."""

    def __init__(
        self,
        *,
        max_depth: int,
        max_query_vertices: int = 0,
        governor: MemoryGovernor | None = None,
    ) -> None:
        if max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        self.max_depth = max_depth
        self.max_query_vertices = max_query_vertices
        self.governor = governor
        self._cond = make_condition("Scheduler._cond")
        self._heap: list[tuple[int, int, Request]] = []
        self._seq = 0
        self._closed = False
        self.admitted = 0
        self.rejected: dict[str, int] = {}
        self.expired = 0
        self.cancelled = 0
        self.cancelled_at_dispatch = 0
        self.expired_at_dispatch = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        with self._cond:
            return len(self._heap)

    def _reject(
        self,
        reason: str,
        message: str,
        retry_after: float | None = None,
    ) -> AdmissionError:
        self.rejected[reason] = self.rejected.get(reason, 0) + 1
        return AdmissionError(reason, message, retry_after=retry_after)

    def submit(self, request: Request) -> None:
        """Admit ``request`` or raise :class:`AdmissionError`."""
        with self._cond:
            if self._closed:
                raise self._reject(
                    "shutdown", "the matching service is shutting down"
                )
            if len(self._heap) >= self.max_depth:
                raise self._reject(
                    "queue-full",
                    f"queue depth {self.max_depth} reached; retry later",
                )
            if (
                self.max_query_vertices
                and request.query.num_vertices > self.max_query_vertices
            ):
                raise self._reject(
                    "oversized-query",
                    f"query has {request.query.num_vertices} vertices, "
                    f"admission bound is {self.max_query_vertices}",
                )
            if (
                self.governor is not None
                and self.governor.budget_bytes is not None
                and self.governor.pressure >= 1.0
            ):
                raise self._reject(
                    "memory-budget",
                    f"memory budget exhausted "
                    f"({self.governor.tracked_bytes} of "
                    f"{self.governor.budget_bytes} bytes in use)",
                )
            self._seq += 1
            request.seq = self._seq
            heapq.heappush(
                self._heap, (request.priority, request.seq, request)
            )
            self.admitted += 1
            self._cond.notify()

    def reject(
        self,
        reason: str,
        message: str,
        *,
        retry_after: float | None = None,
    ) -> AdmissionError:
        """Mint (and count) an admission rejection on the service's
        behalf — used for rejections decided outside the queue itself,
        e.g. degraded read-only mode or a below-quorum shard."""
        with self._cond:
            return self._reject(reason, message, retry_after)

    def cancel_count(self, n: int = 1) -> None:
        """Record ``n`` cancellations observed at pop time."""
        with self._cond:
            self.cancelled += n

    def note_dispatch_skips(self, *, cancelled: int = 0, expired: int = 0) -> None:
        """Record requests the dispatcher skipped at dispatch time — a
        cancellation or deadline that landed after pop but before the
        engine pass (the last chance to avoid burning a matcher run)."""
        with self._cond:
            self.cancelled += cancelled
            self.expired += expired
            self.cancelled_at_dispatch += cancelled
            self.expired_at_dispatch += expired

    def pop_batch(
        self, max_batch: int, timeout: float
    ) -> tuple[list["Request"], list["Request"]]:
        """One graph-affine batch, waiting up to ``timeout`` seconds.

        Returns ``(batch, dead)``: ``batch`` holds up to ``max_batch``
        runnable requests all targeting the same data graph (priority
        order, the head request's graph wins); ``dead`` holds requests
        discovered expired or cancelled while scanning — the caller
        settles their jobs.  Both may be empty on timeout.
        """
        with self._cond:
            if not self._heap:
                self._cond.wait(timeout=timeout)
            now = time.monotonic()
            batch: list[Request] = []
            dead: list[Request] = []
            skipped: list[tuple[int, int, Request]] = []
            graph_fp: str | None = None
            while self._heap and len(batch) < max_batch:
                entry = heapq.heappop(self._heap)
                request = entry[2]
                if request.cancelled.is_set():
                    self.cancelled += 1
                    dead.append(request)
                    continue
                if request.deadline is not None and now >= request.deadline:
                    self.expired += 1
                    dead.append(request)
                    continue
                if graph_fp is None:
                    graph_fp = request.graph_fp
                if request.graph_fp != graph_fp:
                    skipped.append(entry)
                    continue
                batch.append(request)
            for entry in skipped:
                heapq.heappush(self._heap, entry)
            return batch, dead

    def close(self) -> list[Request]:
        """Refuse new work and drain what is still queued (the caller
        fails the drained jobs as ``shutdown``)."""
        with self._cond:
            self._closed = True
            drained = [entry[2] for entry in self._heap]
            self._heap.clear()
            self._cond.notify_all()
            return drained

    def snapshot(self) -> dict[str, object]:
        """Counter snapshot for ``/metrics``."""
        with self._cond:
            return {
                "depth": len(self._heap),
                "max_depth": self.max_depth,
                "admitted": self.admitted,
                "rejected": dict(self.rejected),
                "expired": self.expired,
                "cancelled": self.cancelled,
                "cancelled_at_dispatch": self.cancelled_at_dispatch,
                "expired_at_dispatch": self.expired_at_dispatch,
            }
