"""Crash-recoverable service state: graph manifest + durable job journal.

``repro serve --state-dir DIR`` makes the matching service survive a
``kill -9``: every registered graph and every job transition is
persisted under ``DIR`` in :mod:`repro.checkpoint` format — each byte
lands via tmp + ``fsync`` + ``os.replace``
(:func:`~repro.checkpoint.atomic.atomic_write_bytes`), so a crash at
any instant leaves either the old record or the new one, never a torn
file.  On restart the service:

* verifies the stored **config fingerprint** (same
  :func:`~repro.fingerprint.config_fingerprint` the checkpoint store
  stamps manifests with — a state dir written under a config that could
  enumerate differently is refused, not silently reused);
* re-registers every persisted graph (content-addressed as
  ``graphs/<fingerprint>.npz``) and re-applies the name map;
* re-enqueues journaled **pending** jobs under their original ids;
* marks jobs that were **running** at the crash ``retryable`` — the
  engine pass died with the process, and because results are only
  journaled *after* completion, a retry can never double-count;
* restores terminal jobs (count-mode results are journaled as the same
  payload the result cache stores) and the idempotency-key map, so a
  client retrying a completed job gets the journaled answer instead of
  a second execution.

Layout::

    DIR/
      service.json        format version + config fingerprint
      graphs.json         name -> fingerprint map
      graphs/<fp>.npz     CSR arrays (content-addressed)
      jobs/<job-id>.json  one journal record per job
      versions.jsonl      append-only version-lineage journal

**Version commits** (:mod:`repro.versioning`) persist in a strict
order — child graph bytes, then the lineage record, then the name map —
so that a crash at any instant leaves a recoverable prefix: an orphan
graph with no record means the commit never happened; a record whose
graph is on disk means it did, even if the name map never caught up
(the journal outranks the name map at recovery).  The journal is
append-only with per-record fsync; a torn tail line (crash mid-append)
is skipped on load, never fatal.
"""

from __future__ import annotations

import io
import json
import os

import numpy as np

from ..analysis.sanitizer import make_lock
from ..checkpoint.atomic import atomic_write_bytes, atomic_write_json, fsync_dir
from ..fingerprint import check_fingerprints
from ..graph.build import from_edges
from ..graph.csr import CSRGraph, INDEX_DTYPE

__all__ = ["ServiceState", "graph_from_record", "graph_record"]

FORMAT_VERSION = 1


def graph_record(graph: CSRGraph) -> dict[str, object]:
    """JSON-safe description of a (small) graph for the job journal.

    Queries are tiny — a handful of vertices — so an explicit edge list
    is the right durability format: human-readable in the journal and
    rebuildable without touching the content-addressed graph store.
    """
    record: dict[str, object] = {
        "edges": [[int(u), int(v)] for u, v in graph.edge_list()],
        "num_vertices": int(graph.num_vertices),
        "name": graph.name,
    }
    if graph.labels is not None:
        record["labels"] = [int(x) for x in graph.labels]
    return record


def graph_from_record(record: dict[str, object]) -> CSRGraph:
    """Inverse of :func:`graph_record`."""
    edges = np.asarray(record["edges"], dtype=INDEX_DTYPE).reshape(-1, 2)
    graph = from_edges(
        edges,
        num_vertices=int(record["num_vertices"]),  # type: ignore[arg-type]
        name=str(record.get("name", "graph")),
    )
    labels = record.get("labels")
    if labels is not None:
        graph = graph.with_labels(labels)
    return graph


class ServiceState:
    """Durable face of one :class:`~repro.service.MatchingService`.

    Not thread-safe by itself; the service serialises writes through
    its own locks (one writer: the submit path and the dispatch loop
    never write the same job record concurrently — a job is journaled
    pending before the scheduler can hand it to the loop).
    """

    def __init__(self, directory: str) -> None:
        self.directory = os.path.abspath(directory)
        self.graphs_dir = os.path.join(self.directory, "graphs")
        self.jobs_dir = os.path.join(self.directory, "jobs")
        os.makedirs(self.graphs_dir, exist_ok=True)
        os.makedirs(self.jobs_dir, exist_ok=True)
        self.jobs_journaled = 0
        self.graphs_saved = 0
        self.versions_journaled = 0
        self.version_records_torn = 0
        # Serialises journal writes: without it the submit thread's
        # "pending" record could land *after* the dispatch thread's
        # "done" record for the same job and roll the journal back.
        self._lock = make_lock("ServiceState._lock")

    # ------------------------------------------------------------------
    # Manifest
    # ------------------------------------------------------------------
    def check_manifest(self, config_fp: str) -> None:
        """Stamp a fresh state dir, or verify an existing one.

        Raises :class:`~repro.fingerprint.CheckpointMismatchError` when
        the directory was written under a config whose count-relevant
        fields differ — resuming against it could serve stale answers.
        """
        path = os.path.join(self.directory, "service.json")
        current = {
            "format": str(FORMAT_VERSION),
            "config": config_fp,
        }
        if os.path.exists(path):
            with open(path, encoding="utf-8") as fh:
                stored = json.load(fh)
            check_fingerprints(
                {k: str(v) for k, v in stored.items()}, current
            )
            return
        atomic_write_json(path, current)

    # ------------------------------------------------------------------
    # Graphs
    # ------------------------------------------------------------------
    def _graph_path(self, fingerprint: str) -> str:
        return os.path.join(self.graphs_dir, f"{fingerprint}.npz")

    def save_graph(self, graph: CSRGraph, fingerprint: str) -> None:
        """Persist ``graph`` content-addressed (idempotent: an existing
        file for the same fingerprint is already the same bytes)."""
        path = self._graph_path(fingerprint)
        if os.path.exists(path):
            return
        arrays = {
            "num_vertices": np.asarray([graph.num_vertices], dtype=INDEX_DTYPE),
            "indptr": graph.indptr,
            "indices": graph.indices,
            "rindptr": graph.rindptr,
            "rindices": graph.rindices,
            "name": np.asarray(graph.name),
        }
        if graph.labels is not None:
            arrays["labels"] = graph.labels
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        atomic_write_bytes(path, buffer.getvalue())
        self.graphs_saved += 1

    def forget_graph(self, fingerprint: str) -> None:
        try:
            os.unlink(self._graph_path(fingerprint))
        except FileNotFoundError:
            return

    def save_names(self, names: dict[str, str]) -> None:
        """Persist the full name -> fingerprint map (small; rewritten
        whole on every registry change)."""
        atomic_write_json(
            os.path.join(self.directory, "graphs.json"), {"names": names}
        )

    def load_names(self) -> dict[str, str]:
        path = os.path.join(self.directory, "graphs.json")
        if not os.path.exists(path):
            return {}
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        return {str(k): str(v) for k, v in payload.get("names", {}).items()}

    def load_graphs(self) -> dict[str, CSRGraph]:
        """Every persisted graph, keyed by stored fingerprint."""
        graphs: dict[str, CSRGraph] = {}
        for entry in sorted(os.listdir(self.graphs_dir)):
            if not entry.endswith(".npz"):
                continue
            fp = entry[: -len(".npz")]
            with np.load(
                os.path.join(self.graphs_dir, entry), allow_pickle=False
            ) as npz:
                labels = npz["labels"] if "labels" in npz.files else None
                graphs[fp] = CSRGraph(
                    num_vertices=int(npz["num_vertices"][0]),
                    indptr=npz["indptr"],
                    indices=npz["indices"],
                    rindptr=npz["rindptr"],
                    rindices=npz["rindices"],
                    name=str(npz["name"]),
                    labels=labels,
                )
        return graphs

    # ------------------------------------------------------------------
    # Version lineage journal
    # ------------------------------------------------------------------
    def _versions_path(self) -> str:
        return os.path.join(self.directory, "versions.jsonl")

    def append_version(self, record: dict[str, object]) -> None:
        """Append one lineage record (fsync'd before returning).

        Single-line JSON: the append either lands whole or leaves a
        torn final line that :meth:`load_versions` skips — the journal
        is a valid prefix at every instant.  Called *after* the child
        graph's bytes are on disk (:meth:`save_graph`), so a record in
        the journal always names an available graph.
        """
        line = json.dumps(record, sort_keys=True) + "\n"
        with self._lock:
            with open(self._versions_path(), "a", encoding="utf-8") as fh:
                fh.write(line)
                fh.flush()
                os.fsync(fh.fileno())
            self.versions_journaled += 1
        fsync_dir(self.directory)

    def load_versions(self) -> list[dict[str, object]]:
        """Every parseable lineage record, in append order.  A torn
        tail (crash mid-append) is counted and skipped — losing the
        last commit's record is exactly the "commit never happened"
        outcome the commit order guarantees is safe."""
        path = self._versions_path()
        if not os.path.exists(path):
            return []
        records: list[dict[str, object]] = []
        with open(path, encoding="utf-8") as fh:
            for raw in fh:
                raw = raw.strip()
                if not raw:
                    continue
                try:
                    record = json.loads(raw)
                except ValueError:
                    self.version_records_torn += 1
                    continue
                if isinstance(record, dict):
                    records.append(record)
                else:
                    self.version_records_torn += 1
        return records

    def graph_available(self, fingerprint: str) -> bool:
        """Whether the content-addressed graph file exists on disk —
        the availability test version recovery filters the journal by."""
        return os.path.exists(self._graph_path(fingerprint))

    # ------------------------------------------------------------------
    # Job journal
    # ------------------------------------------------------------------
    def record_job(self, record: dict[str, object]) -> None:
        """Journal one job state (atomic whole-record replace)."""
        self.record_jobs([record])

    def record_jobs(self, records: list[dict[str, object]]) -> None:
        """Group-commit a batch of job records: every file is written
        tmp + fsync + replace, but the directory entry is fsynced once
        for the whole batch instead of once per record."""
        if not records:
            return
        with self._lock:
            for record in records:
                job_id = str(record["job_id"])
                atomic_write_json(
                    os.path.join(self.jobs_dir, f"{job_id}.json"),
                    dict(record),
                    sync_dir=False,
                )
                self.jobs_journaled += 1
            fsync_dir(self.jobs_dir)

    def forget_job(self, job_id: str) -> None:
        """Drop a journal record (admission refused after journaling)."""
        with self._lock:
            try:
                os.unlink(os.path.join(self.jobs_dir, f"{job_id}.json"))
            except FileNotFoundError:
                return

    def load_jobs(self) -> list[dict[str, object]]:
        """Every journaled job record, in job-id order."""
        records: list[dict[str, object]] = []
        for entry in sorted(os.listdir(self.jobs_dir)):
            if not entry.endswith(".json"):
                continue
            with open(
                os.path.join(self.jobs_dir, entry), encoding="utf-8"
            ) as fh:
                records.append(json.load(fh))
        return records

    def snapshot(self) -> dict[str, object]:
        """Counter snapshot for ``/metrics``."""
        return {
            "directory": self.directory,
            "jobs_journaled": self.jobs_journaled,
            "graphs_saved": self.graphs_saved,
            "versions_journaled": self.versions_journaled,
            "version_records_torn": self.version_records_torn,
        }
