"""Batching dispatcher: one matcher pass per burst of same-graph work.

The scheduler hands over graph-affine batches; this module turns each
batch into the fewest possible matcher invocations:

1. **Coalescing** — requests inside the batch with the same execution
   key ``(query_fp, materialize, time_limit_ms)`` are duplicates of one
   computation; exactly one runs, the rest share its result (demuxed
   per request, each with its own job).
2. **Result cache** — cacheable groups (count-only, no time limit)
   probe the LRU result cache first; a hit costs zero matcher
   invocations and rebuilds the result from the cached payload.
3. **Batched execution** — the distinct remaining queries go to the
   graph handle's persistent engine.  Under a
   :class:`~repro.parallel.ParallelMatcher` they run as **one**
   :meth:`~repro.parallel.ParallelMatcher.match_many` pass: every
   query's strided ``part=/num_parts=`` root intervals are leased onto
   the shared process pool together, so the pool load-balances across
   the whole batch, not per query.  The **plan cache** supplies each
   query's interval count when it has seen the triple before, skipping
   the ordering + root-candidate planning pass.

Per-request attribution: the result handed to each request carries the
full :class:`~repro.core.stats.SearchStats` of its execution; requests
that shared an execution (coalesced or cache hits) are flagged so
metrics can distinguish computed work from amortized work.  Cache-hit
results rebuild with an empty hardware-counter model — counters belong
to the run that actually executed, exactly like a checkpoint-resumed
shard.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher
from ..core.result import MatchResult
from ..core.stats import SearchStats
from ..gpusim.cost import CostModel
from ..parallel.matcher import ParallelMatcher
from .cache import LRUBytesCache
from .registry import GraphHandle
from .scheduler import Request

__all__ = ["DispatchOutcome", "Dispatcher", "payload_from_result",
           "result_from_payload"]


def payload_from_result(result: MatchResult) -> dict[str, object]:
    """JSON-safe form of a count-mode result (what the cache stores)."""
    return {
        "count": int(result.count),
        "time_ms": float(result.time_ms),
        "stats": result.stats.to_json(),
        "order": [int(q) for q in result.order],
    }


def result_from_payload(
    payload: dict[str, object], config: CuTSConfig
) -> MatchResult:
    """Rebuild a cached result (hardware counters are not cached; a
    cache hit contributes an empty cost model, like a resumed shard)."""
    return MatchResult(
        count=int(payload["count"]),  # type: ignore[arg-type]
        matches=None,
        time_ms=float(payload["time_ms"]),  # type: ignore[arg-type]
        cost=CostModel(config.device),
        stats=SearchStats.from_json(payload["stats"]),  # type: ignore[arg-type]
        order=tuple(int(q) for q in payload["order"]),  # type: ignore[union-attr]
    )


def _payload_bytes(payload: dict[str, object]) -> int:
    return len(json.dumps(payload, sort_keys=True).encode("utf-8"))


@dataclass
class DispatchOutcome:
    """What happened to one request of a dispatched batch."""

    request: Request
    result: MatchResult | None = None
    error: str | None = None
    cached: bool = False
    coalesced: bool = False
    plan_hit: bool = False


class Dispatcher:
    """Executes scheduler batches against registry handles."""

    def __init__(
        self,
        config: CuTSConfig,
        result_cache: LRUBytesCache,
        plan_cache: LRUBytesCache,
        config_fp: str,
    ) -> None:
        self.config = config
        self.result_cache = result_cache
        self.plan_cache = plan_cache
        self.config_fp = config_fp
        self.matcher_invocations = 0
        self.batches_dispatched = 0
        self.requests_dispatched = 0
        self.requests_coalesced = 0

    # ------------------------------------------------------------------
    def dispatch(
        self, handle: GraphHandle, batch: list[Request]
    ) -> list[DispatchOutcome]:
        """Run one graph-affine batch; never raises per-request errors
        (they come back in the outcomes)."""
        self.batches_dispatched += 1
        self.requests_dispatched += len(batch)
        outcomes = {id(req): DispatchOutcome(req) for req in batch}

        # 1. Coalesce identical executions.
        groups: dict[tuple[str, bool, float | None], list[Request]] = {}
        for req in batch:
            key = (req.query_fp, req.materialize, req.time_limit_ms)
            groups.setdefault(key, []).append(req)

        to_run: list[tuple[tuple[str, bool, float | None], list[Request]]] = []
        for key, members in groups.items():
            if len(members) > 1:
                self.requests_coalesced += len(members) - 1
                for req in members:
                    outcomes[id(req)].coalesced = True
            # 2. Result-cache probe (count-only, untimed groups only:
            # a time limit can truncate counts and materialised rows
            # are too big to be worth caching).
            query_fp, materialize, time_limit = key
            if not materialize and time_limit is None:
                cache_key = (handle.fingerprint, query_fp, self.config_fp)
                payload = self.result_cache.get(cache_key)
                if payload is not None:
                    result = result_from_payload(payload, self.config)
                    for req in members:
                        outcomes[id(req)].result = result
                        outcomes[id(req)].cached = True
                    continue
            to_run.append((key, members))

        # 3. Execute the distinct remaining queries.
        if to_run:
            self._execute(handle, to_run, outcomes)
        handle.queries_served += len(batch)
        return [outcomes[id(req)] for req in batch]

    # ------------------------------------------------------------------
    def _execute(
        self,
        handle: GraphHandle,
        to_run: list[tuple[tuple[str, bool, float | None], list[Request]]],
        outcomes: dict[int, DispatchOutcome],
    ) -> None:
        try:
            matcher = handle.matcher()
        except Exception as exc:  # handle closed under us
            self._fail_all(to_run, outcomes, str(exc))
            return
        if isinstance(matcher, ParallelMatcher):
            self._execute_parallel(handle, matcher, to_run, outcomes)
        else:
            self._execute_serial(handle, matcher, to_run, outcomes)

    def _execute_serial(
        self,
        handle: GraphHandle,
        matcher: CuTSMatcher,
        to_run: list[tuple[tuple[str, bool, float | None], list[Request]]],
        outcomes: dict[int, DispatchOutcome],
    ) -> None:
        for (query_fp, materialize, time_limit), members in to_run:
            try:
                self.matcher_invocations += 1
                result = matcher.match(
                    members[0].query,
                    materialize=materialize,
                    time_limit_ms=time_limit,
                )
            except Exception as exc:
                self._settle_error(members, outcomes, str(exc))
                continue
            self._settle(
                handle, query_fp, materialize, time_limit,
                members, result, outcomes,
            )

    def _execute_parallel(
        self,
        handle: GraphHandle,
        matcher: ParallelMatcher,
        to_run: list[tuple[tuple[str, bool, float | None], list[Request]]],
        outcomes: dict[int, DispatchOutcome],
    ) -> None:
        # One pool pass for every materialize flavour present (almost
        # always just the count-only one).
        by_flavour: dict[
            bool, list[tuple[tuple[str, bool, float | None], list[Request]]]
        ] = {}
        for item in to_run:
            by_flavour.setdefault(item[0][1], []).append(item)
        for materialize, items in by_flavour.items():
            queries = [members[0].query for _, members in items]
            limits = [key[2] for key, _ in items]
            hints: list[int | None] = []
            plan_hits: list[bool] = []
            for key, _ in items:
                plan = self.plan_cache.get(
                    (handle.fingerprint, key[0], self.config_fp)
                )
                hints.append(
                    int(plan["num_parts"]) if plan is not None else None
                )
                plan_hits.append(plan is not None)
            try:
                self.matcher_invocations += len(queries)
                results = matcher.match_many(
                    queries,
                    materialize=materialize,
                    time_limit_ms=limits,
                    num_parts=hints,
                )
            except Exception as exc:
                self._fail_all(items, outcomes, str(exc))
                continue
            for (key, members), result, hint, plan_hit in zip(
                items, results, hints, plan_hits
            ):
                for req in members:
                    outcomes[id(req)].plan_hit = plan_hit
                if hint is None:
                    plan_payload = {
                        "num_parts": matcher.num_intervals(members[0].query),
                        "order": [int(q) for q in result.order],
                    }
                    self.plan_cache.put(
                        (handle.fingerprint, key[0], self.config_fp),
                        plan_payload,
                        _payload_bytes(plan_payload),
                    )
                self._settle(
                    handle, key[0], key[1], key[2],
                    members, result, outcomes,
                )

    # ------------------------------------------------------------------
    def _settle(
        self,
        handle: GraphHandle,
        query_fp: str,
        materialize: bool,
        time_limit: float | None,
        members: list[Request],
        result: MatchResult,
        outcomes: dict[int, DispatchOutcome],
    ) -> None:
        if not materialize and time_limit is None:
            payload = payload_from_result(result)
            self.result_cache.put(
                (handle.fingerprint, query_fp, self.config_fp),
                payload,
                _payload_bytes(payload),
            )
        for req in members:
            outcomes[id(req)].result = result

    def _settle_error(
        self,
        members: list[Request],
        outcomes: dict[int, DispatchOutcome],
        message: str,
    ) -> None:
        for req in members:
            outcomes[id(req)].error = message

    def _fail_all(
        self,
        items: list[tuple[tuple[str, bool, float | None], list[Request]]],
        outcomes: dict[int, DispatchOutcome],
        message: str,
    ) -> None:
        for _, members in items:
            self._settle_error(members, outcomes, message)

    def snapshot(self) -> dict[str, int]:
        """Counter snapshot for ``/metrics``."""
        return {
            "matcher_invocations": self.matcher_invocations,
            "batches_dispatched": self.batches_dispatched,
            "requests_dispatched": self.requests_dispatched,
            "requests_coalesced": self.requests_coalesced,
        }
