"""Batching dispatcher: one matcher pass per burst of same-graph work.

The scheduler hands over graph-affine batches; this module turns each
batch into the fewest possible matcher invocations:

1. **Coalescing** — requests inside the batch with the same execution
   key ``(query_fp, materialize, time_limit_ms)`` are duplicates of one
   computation; exactly one runs, the rest share its result (demuxed
   per request, each with its own job).
2. **Result cache** — cacheable groups (count-only, no time limit)
   probe the LRU result cache first; a hit costs zero matcher
   invocations and rebuilds the result from the cached payload.  Every
   payload carries a content **checksum** computed at store time and
   verified on read: a corrupt entry (torn read, chaos injection) is
   dropped and treated as a miss, never served.
3. **Batched execution** — the distinct remaining queries go to the
   graph handle's persistent engine.  Under a
   :class:`~repro.parallel.ParallelMatcher` they run as **one**
   :meth:`~repro.parallel.ParallelMatcher.match_many` pass: every
   query's strided ``part=/num_parts=`` root intervals are leased onto
   the shared process pool together, so the pool load-balances across
   the whole batch, not per query.  The **plan cache** supplies each
   query's interval count when it has seen the triple before, skipping
   the ordering + root-candidate planning pass.

Failure isolation is **per job, not per batch**:

* a group whose engine pass raises settles only that group's requests
  as failed — the rest of the batch is unaffected (the serial path
  always worked this way; the pooled path gets it via fallback);
* when the *pool itself* fails mid-batch (workers SIGKILLed beyond the
  lease machinery's patience, chaos injection), the dispatcher retries
  the batch **once, serially** on the handle's fallback engine — a
  degraded-but-exact answer beats a failed batch;
* a request whose cancellation or deadline landed after pop but before
  the engine pass is settled here without burning a matcher run, and
  the skip is attributed in its :class:`~repro.core.stats.SearchStats`
  (``cancelled_at_dispatch``);
* requests carrying a **deadline** execute serially with the remaining
  time as the engine's cooperative ``wall_limit_s`` — the matcher's
  chunk loop aborts mid-search instead of running away past the
  deadline.

Per-request attribution: the result handed to each request carries the
full :class:`~repro.core.stats.SearchStats` of its execution; requests
that shared an execution (coalesced or cache hits) are flagged so
metrics can distinguish computed work from amortized work.  Cache-hit
results rebuild with an empty hardware-counter model — counters belong
to the run that actually executed, exactly like a checkpoint-resumed
shard.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import time
from dataclasses import dataclass, field

from ..analysis.sanitizer import make_lock
from ..core.config import CuTSConfig
from ..core.matcher import CuTSMatcher, SearchTimeout
from ..core.result import MatchResult
from ..core.stats import SearchStats
from ..gpusim.cost import CostModel
from ..parallel.matcher import ParallelMatcher
from .cache import LRUBytesCache
from .faults import InjectedEngineFault, ServiceFaultInjector
from .registry import GraphHandle
from .scheduler import Request

__all__ = ["DispatchOutcome", "Dispatcher", "payload_checksum",
           "payload_from_result", "result_from_payload", "verify_payload"]

# (key, members) pairs as produced by coalescing: the execution key is
# (query_fp, materialize, time_limit_ms, part, num_parts) — two
# requests are the same computation only when their striding matches.
_Group = tuple[tuple[str, bool, float | None, int, int], list[Request]]


def payload_checksum(payload: dict[str, object]) -> str:
    """Content checksum over a result payload (checksum field excluded)."""
    body = {k: v for k, v in payload.items() if k != "checksum"}
    canonical = json.dumps(body, sort_keys=True).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()[:16]


def payload_from_result(result: MatchResult) -> dict[str, object]:
    """JSON-safe form of a count-mode result (what the cache stores and
    the job journal persists), sealed with a content checksum."""
    payload: dict[str, object] = {
        "count": int(result.count),
        "time_ms": float(result.time_ms),
        "stats": result.stats.to_json(),
        "order": [int(q) for q in result.order],
    }
    payload["checksum"] = payload_checksum(payload)
    return payload


def verify_payload(payload: dict[str, object]) -> bool:
    """Whether a payload's checksum matches its content.  Legacy
    payloads without a checksum fail closed (treated as corrupt): the
    only writers are this module and the journal, both of which seal."""
    stored = payload.get("checksum")
    return isinstance(stored, str) and stored == payload_checksum(payload)


def result_from_payload(
    payload: dict[str, object], config: CuTSConfig
) -> MatchResult:
    """Rebuild a cached result (hardware counters are not cached; a
    cache hit contributes an empty cost model, like a resumed shard)."""
    return MatchResult(
        count=int(payload["count"]),  # type: ignore[arg-type]
        matches=None,
        time_ms=float(payload["time_ms"]),  # type: ignore[arg-type]
        cost=CostModel(config.device),
        stats=SearchStats.from_json(payload["stats"]),  # type: ignore[arg-type]
        order=tuple(int(q) for q in payload["order"]),  # type: ignore[union-attr]
    )


def _payload_bytes(payload: dict[str, object]) -> int:
    return len(json.dumps(payload, sort_keys=True).encode("utf-8"))


@dataclass
class DispatchOutcome:
    """What happened to one request of a dispatched batch."""

    request: Request
    result: MatchResult | None = None
    error: str | None = None
    cached: bool = False
    coalesced: bool = False
    plan_hit: bool = False
    cancelled: bool = False
    expired: bool = False
    fallback: bool = False
    incremental: bool = False
    stats: SearchStats | None = None


class Dispatcher:
    """Executes scheduler batches against registry handles."""

    def __init__(
        self,
        config: CuTSConfig,
        result_cache: LRUBytesCache,
        plan_cache: LRUBytesCache,
        config_fp: str,
        *,
        faults: ServiceFaultInjector | None = None,
    ) -> None:
        self.config = config
        self.result_cache = result_cache
        self.plan_cache = plan_cache
        self.config_fp = config_fp
        self.faults = faults
        # Counters are bumped by the dispatch thread and read by HTTP
        # threads via snapshot(); unguarded, the stage_wall_s dict walk
        # could see a mid-resize dict.  The lock is held only around
        # counter touches, never across engine or cache calls.
        self._stats_lock = make_lock("Dispatcher._stats_lock")
        self.matcher_invocations = 0
        self.batches_dispatched = 0
        self.requests_dispatched = 0
        self.requests_coalesced = 0
        self.cancelled_at_dispatch = 0
        self.expired_at_dispatch = 0
        self.serial_fallbacks = 0
        self.pool_failures = 0
        self.corrupt_cache_drops = 0
        self.incremental_matches = 0
        self.incremental_rejects = 0
        # Per-stage expansion wall totals (anchor_gather / filter /
        # intersection / write_out), folded from every settled result's
        # SearchStats.  Empty unless the engine config has
        # ``profile_expansion`` on.
        self.stage_wall_s: dict[str, float] = {}

    # ------------------------------------------------------------------
    def dispatch(
        self, handle: GraphHandle, batch: list[Request]
    ) -> list[DispatchOutcome]:
        """Run one graph-affine batch; never raises per-request errors
        (they come back in the outcomes)."""
        with self._stats_lock:
            self.batches_dispatched += 1
            self.requests_dispatched += len(batch)
        outcomes = {id(req): DispatchOutcome(req) for req in batch}

        if self.faults is not None:
            stall = self.faults.stall_s()
            if stall > 0.0:
                time.sleep(stall)

        # 0. Last-chance liveness check: a cancellation or deadline that
        # landed after pop must not burn an engine pass.
        live = self._drop_dead(batch, outcomes)

        # 1. Coalesce identical executions.
        groups: dict[
            tuple[str, bool, float | None, int, int], list[Request]
        ] = {}
        for req in live:
            key = (
                req.query_fp, req.materialize, req.time_limit_ms,
                req.part, req.num_parts,
            )
            groups.setdefault(key, []).append(req)

        to_run: list[_Group] = []
        for key, members in groups.items():
            if len(members) > 1:
                with self._stats_lock:
                    self.requests_coalesced += len(members) - 1
                for req in members:
                    outcomes[id(req)].coalesced = True
            # 2. Result-cache probe (count-only, untimed, unsplit
            # groups only: a time limit can truncate counts,
            # materialised rows are too big to be worth caching, and a
            # strided part's count must never alias the full query's).
            query_fp, materialize, time_limit, _part, num_parts = key
            if not materialize and time_limit is None and num_parts == 1:
                payload = self._cache_probe(handle.fingerprint, query_fp)
                if payload is not None:
                    result = result_from_payload(payload, self.config)
                    for req in members:
                        outcomes[id(req)].result = result
                        outcomes[id(req)].cached = True
                    continue
                # 2b. Incremental probe: a miss on a freshly committed
                # version whose *parent* still has a verified cached
                # count can be answered by re-matching only the dirty
                # ball (repro.versioning) — the commit's delta plus an
                # arithmetic merge, instead of a whole-graph pass.
                incremental = self._incremental_probe(
                    handle, members[0].query, query_fp
                )
                if incremental is not None:
                    for req in members:
                        outcomes[id(req)].incremental = True
                    self._settle(handle, key, members, incremental, outcomes)
                    continue
            to_run.append((key, members))

        # 3. Execute the distinct remaining queries.
        if to_run:
            self._execute(handle, to_run, outcomes)
        handle.note_served(len(batch))
        return [outcomes[id(req)] for req in batch]

    # ------------------------------------------------------------------
    def _drop_dead(
        self, batch: list[Request], outcomes: dict[int, DispatchOutcome]
    ) -> list[Request]:
        """Settle requests cancelled/expired between pop and dispatch;
        the skip is attributed in ``SearchStats`` so metrics can show
        how many engine passes the recheck saved."""
        now = time.monotonic()
        live: list[Request] = []
        for req in batch:
            if req.cancelled.is_set():
                with self._stats_lock:
                    self.cancelled_at_dispatch += 1
                out = outcomes[id(req)]
                out.cancelled = True
                out.error = "cancelled at dispatch"
                out.stats = SearchStats(cancelled_at_dispatch=1)
            elif req.deadline is not None and now >= req.deadline:
                with self._stats_lock:
                    self.expired_at_dispatch += 1
                out = outcomes[id(req)]
                out.expired = True
                out.error = (
                    "deadline-expired: request reached dispatch past its "
                    "deadline"
                )
                out.stats = SearchStats(cancelled_at_dispatch=1)
            else:
                live.append(req)
        return live

    def _cache_probe(
        self, graph_fp: str, query_fp: str
    ) -> dict[str, object] | None:
        """A verified cache payload, or ``None``.  Corrupt entries (and
        chaos-injected corrupt *reads*) fail verification, are dropped,
        and count as misses."""
        key = (graph_fp, query_fp, self.config_fp)
        payload = self.result_cache.get(key)
        if payload is None:
            return None
        if self.faults is not None and self.faults.should_corrupt():
            payload = self.faults.corrupt_payload(payload)
        if not verify_payload(payload):
            with self._stats_lock:
                self.corrupt_cache_drops += 1
            self.result_cache.pop(key)
            return None
        return payload

    def _incremental_probe(
        self,
        handle: GraphHandle,
        query: object,
        query_fp: str,
    ) -> MatchResult | None:
        """Serve a cache miss on a freshly committed version from the
        parent's cached count plus the commit delta.

        Returns ``None`` — and the miss falls through to an ordinary
        full match — whenever the probe cannot run or cannot be trusted:
        the ``versioning_incremental`` knob is off, the handle has no
        delta lineage (root or whole-graph replacement), the parent's
        entry is gone or fails checksum verification, the query shape
        is unsupported (edgeless), or the incremental arithmetic
        detects a mismatched base.  The probe runs on the handle's
        serial engine: the dirty ball is small by construction, and the
        serial matcher is the one that implements ``delta=``.
        """
        if not self.config.versioning_incremental:
            return None
        parent_fp, delta = handle.incremental_basis()
        if parent_fp is None or delta is None:
            return None
        base = self.result_cache.get((parent_fp, query_fp, self.config_fp))
        if base is None or not verify_payload(base):
            return None
        try:
            with self._stats_lock:
                self.matcher_invocations += 1
            result = handle.fallback_matcher().match(
                query,  # type: ignore[arg-type]
                base_result=int(base["count"]),  # type: ignore[arg-type]
                delta=delta,
            )
        except Exception:
            # The probe is an optimisation; any failure — unsupported
            # shape, mismatched base, engine error — must cost exactly
            # the full match it was trying to save, never the batch.
            with self._stats_lock:
                self.incremental_rejects += 1
            return None
        with self._stats_lock:
            self.incremental_matches += 1
        return result

    # ------------------------------------------------------------------
    def _execute(
        self,
        handle: GraphHandle,
        to_run: list[_Group],
        outcomes: dict[int, DispatchOutcome],
    ) -> None:
        try:
            matcher = handle.matcher()
        except Exception as exc:  # handle closed under us
            self._fail_all(to_run, outcomes, str(exc))
            return
        if isinstance(matcher, ParallelMatcher):
            # Deadline-carrying groups run serially: the serial engine's
            # cooperative wall_limit_s is the cancellation channel the
            # chunk loop honours mid-search.  Strided parts run serially
            # too — the pool pass leases whole queries, while a part is
            # already one replica's slice of a cluster-split query.
            deadline_groups = [
                g for g in to_run
                if any(r.deadline is not None for r in g[1])
                or g[0][4] > 1
            ]
            pool_groups = [
                g for g in to_run
                if not any(r.deadline is not None for r in g[1])
                and g[0][4] == 1
            ]
            if deadline_groups:
                self._execute_serial(
                    handle, handle.fallback_matcher(), deadline_groups,
                    outcomes,
                )
            if pool_groups:
                self._execute_parallel(handle, matcher, pool_groups, outcomes)
        else:
            self._execute_serial(handle, matcher, to_run, outcomes)

    def _group_wall_limit(self, members: list[Request]) -> float | None:
        """Remaining seconds before the group's furthest deadline
        (``None`` when any member is deadline-free)."""
        deadlines = [req.deadline for req in members]
        if any(d is None for d in deadlines):
            return None
        remaining = max(d for d in deadlines if d is not None) - time.monotonic()
        return max(1e-3, remaining)

    def _execute_serial(
        self,
        handle: GraphHandle,
        matcher: CuTSMatcher,
        to_run: list[_Group],
        outcomes: dict[int, DispatchOutcome],
    ) -> None:
        for key, members in to_run:
            query_fp, materialize, time_limit, part, num_parts = key
            wall_limit = self._group_wall_limit(members)
            try:
                if (
                    self.faults is not None
                    and self.faults.should_engine_fault()
                ):
                    raise InjectedEngineFault(
                        "injected engine fault (chaos schedule)"
                    )
                with self._stats_lock:
                    self.matcher_invocations += 1
                result = matcher.match(
                    members[0].query,
                    materialize=materialize,
                    time_limit_ms=time_limit,
                    wall_limit_s=wall_limit,
                    part=part,
                    num_parts=num_parts,
                )
            except SearchTimeout as exc:
                self._settle_timeout(members, outcomes, exc, wall_limit)
                continue
            except Exception as exc:
                self._settle_error(members, outcomes, str(exc))
                continue
            self._settle(
                handle, key, members, result, outcomes,
            )

    def _settle_timeout(
        self,
        members: list[Request],
        outcomes: dict[int, DispatchOutcome],
        exc: SearchTimeout,
        wall_limit: float | None,
    ) -> None:
        """A SearchTimeout is a deadline expiry when the group was
        running under one; otherwise it is the caller's own
        ``time_limit_ms`` firing, i.e. an ordinary failure."""
        if wall_limit is not None:
            for req in members:
                out = outcomes[id(req)]
                out.expired = True
                out.error = "deadline-expired during execution"
            return
        self._settle_error(members, outcomes, str(exc))

    def _execute_parallel(
        self,
        handle: GraphHandle,
        matcher: ParallelMatcher,
        to_run: list[_Group],
        outcomes: dict[int, DispatchOutcome],
    ) -> None:
        if self.faults is not None and self.faults.should_kill_worker():
            self._kill_one_worker(matcher)
        # Chaos-injected engine faults hit individual groups here too —
        # they must fail exactly those jobs, not the pool pass.
        if self.faults is not None:
            faulted = [
                g for g in to_run if self.faults.should_engine_fault()
            ]
            if faulted:
                doomed = {id(g[1]) for g in faulted}
                self._fail_all(
                    faulted, outcomes,
                    "injected engine fault (chaos schedule)",
                )
                to_run = [g for g in to_run if id(g[1]) not in doomed]
                if not to_run:
                    return
        # One pool pass for every materialize flavour present (almost
        # always just the count-only one).
        by_flavour: dict[bool, list[_Group]] = {}
        for item in to_run:
            by_flavour.setdefault(item[0][1], []).append(item)
        for materialize, items in by_flavour.items():
            queries = [members[0].query for _, members in items]
            limits = [key[2] for key, _ in items]
            hints: list[int | None] = []
            plan_hits: list[bool] = []
            for key, _ in items:
                plan = self.plan_cache.get(
                    (handle.fingerprint, key[0], self.config_fp)
                )
                hints.append(
                    int(plan["num_parts"]) if plan is not None else None
                )
                plan_hits.append(plan is not None)
            try:
                with self._stats_lock:
                    self.matcher_invocations += len(queries)
                results = matcher.match_many(
                    queries,
                    materialize=materialize,
                    time_limit_ms=limits,
                    num_parts=hints,
                )
            except Exception as exc:
                # The pool pass itself died (workers killed past the
                # lease machinery's patience, executor poisoned, ...).
                # Retry once, serially: degraded throughput, same
                # answers.
                with self._stats_lock:
                    self.pool_failures += 1
                self._retry_serial(handle, items, outcomes, str(exc))
                continue
            for (key, members), result, hint, plan_hit in zip(
                items, results, hints, plan_hits
            ):
                for req in members:
                    outcomes[id(req)].plan_hit = plan_hit
                if hint is None:
                    plan_payload = {
                        "num_parts": matcher.num_intervals(members[0].query),
                        "order": [int(q) for q in result.order],
                    }
                    self.plan_cache.put(
                        (handle.fingerprint, key[0], self.config_fp),
                        plan_payload,
                        _payload_bytes(plan_payload),
                    )
                self._settle(
                    handle, key, members, result, outcomes,
                )

    def _kill_one_worker(self, matcher: ParallelMatcher) -> None:
        """SIGKILL one live pool worker (chaos injection).  Recovery is
        the engine's own job: heartbeat loss → re-lease, broken pool →
        rebuild; counts must come out exact regardless."""
        assert self.faults is not None
        try:
            pids = matcher.worker_pids()
        except Exception:
            return
        if not pids:
            return
        self.faults.note_kill()
        os.kill(pids[0], signal.SIGKILL)

    def _retry_serial(
        self,
        handle: GraphHandle,
        items: list[_Group],
        outcomes: dict[int, DispatchOutcome],
        cause: str,
    ) -> None:
        """One serial retry for a failed pool pass, isolating failures
        per group from here on."""
        try:
            matcher = handle.fallback_matcher()
        except Exception as exc:
            self._fail_all(
                items, outcomes, f"{cause}; serial fallback unavailable: {exc}"
            )
            return
        with self._stats_lock:
            self.serial_fallbacks += 1
        for key, members in items:
            query_fp, materialize, time_limit, part, num_parts = key
            try:
                with self._stats_lock:
                    self.matcher_invocations += 1
                result = matcher.match(
                    members[0].query,
                    materialize=materialize,
                    time_limit_ms=time_limit,
                    part=part,
                    num_parts=num_parts,
                )
            except Exception as exc:
                self._settle_error(
                    members, outcomes, f"{cause}; serial retry failed: {exc}"
                )
                continue
            for req in members:
                outcomes[id(req)].fallback = True
            self._settle(
                handle, key, members, result, outcomes,
            )

    # ------------------------------------------------------------------
    def _settle(
        self,
        handle: GraphHandle,
        key: tuple[str, bool, float | None, int, int],
        members: list[Request],
        result: MatchResult,
        outcomes: dict[int, DispatchOutcome],
    ) -> None:
        query_fp, materialize, time_limit, _part, num_parts = key
        with self._stats_lock:
            for stage, seconds in result.stats.stage_wall_s.items():
                self.stage_wall_s[stage] = (
                    self.stage_wall_s.get(stage, 0.0) + seconds
                )
        if not materialize and time_limit is None and num_parts == 1:
            payload = payload_from_result(result)
            self.result_cache.put(
                (handle.fingerprint, query_fp, self.config_fp),
                payload,
                _payload_bytes(payload),
            )
        for req in members:
            outcomes[id(req)].result = result

    def _settle_error(
        self,
        members: list[Request],
        outcomes: dict[int, DispatchOutcome],
        message: str,
    ) -> None:
        for req in members:
            outcomes[id(req)].error = message

    def _fail_all(
        self,
        items: list[_Group],
        outcomes: dict[int, DispatchOutcome],
        message: str,
    ) -> None:
        for _, members in items:
            self._settle_error(members, outcomes, message)

    def snapshot(self) -> dict[str, object]:
        """Counter snapshot for ``/metrics`` (HTTP threads; the lock
        makes the ``stage_wall_s`` copy safe against a concurrent
        ``_settle`` resizing the dict mid-iteration)."""
        with self._stats_lock:
            return {
                "matcher_invocations": self.matcher_invocations,
                "batches_dispatched": self.batches_dispatched,
                "requests_dispatched": self.requests_dispatched,
                "requests_coalesced": self.requests_coalesced,
                "cancelled_at_dispatch": self.cancelled_at_dispatch,
                "expired_at_dispatch": self.expired_at_dispatch,
                "serial_fallbacks": self.serial_fallbacks,
                "pool_failures": self.pool_failures,
                "corrupt_cache_drops": self.corrupt_cache_drops,
                "incremental_matches": self.incremental_matches,
                "incremental_rejects": self.incremental_rejects,
                "stage_wall_s": dict(self.stage_wall_s),
            }
