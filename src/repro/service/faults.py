"""Deterministic fault injection at the service boundary.

The distributed runtime has an adversary (:mod:`repro.distributed.faults`)
that drops, duplicates, and delays messages; the serving stack gets the
same treatment here.  A seeded :class:`ServiceFaultPlan` describes *what*
can go wrong on the request path and a :class:`ServiceFaultInjector` is
the runtime oracle the dispatcher and service loop consult to decide
*when* it goes wrong.

Fault taxonomy (all consulted in dispatch-loop order, so a given
``(plan, workload)`` pair replays identically):

* **engine fault** — the matcher raises mid-query
  (:class:`InjectedEngineFault`); exercises per-job failure isolation:
  one poisoned query must not fail its batch.
* **dispatch stall** — the dispatcher sleeps before executing a batch,
  modelling a straggler engine; exercises queue-wait deadlines.
* **worker kill** — one pool worker process is SIGKILLed right before a
  batched pool pass; exercises
  :class:`~repro.parallel.ParallelMatcher`'s pool-rebuild + re-lease
  recovery and the dispatcher's serial fallback.
* **cache corruption on read** — a result-cache payload is returned
  with its count flipped (the *stored* entry is left intact, like a bad
  sector read); exercises the checksum verification that turns silent
  wrong answers into cache misses.
* **simulated OOM** — the memory governor's pressure is forced to a
  high value for a window of dispatch ticks; exercises admission
  rejections and degraded read-only mode.

The replicated cluster (:mod:`repro.service.cluster`) consults the
same injector per routed attempt, adding three topology faults:

* **rank crash** — the routed replica is killed abruptly (its journal
  is left exactly as a ``kill -9`` would leave it); exercises failover
  to a secondary and supervisor-driven restart + catch-up.
* **partition** — the routed replica becomes unreachable for a window
  of router ticks without losing state; exercises failover without
  recovery and quorum-based load shedding.
* **slow replica** — the routed attempt is delayed before dispatch;
  exercises the route timeout and revoke-then-failover (the slow
  replica's late answer must never be integrated).

Enable via ``MatchingService(..., faults=...)``, the ``--faults`` flag
of ``python -m repro.serve``, or the ``REPRO_SERVICE_FAULTS``
environment variable — all three take the same ``key=value[,...]``
spec, e.g. ``seed=7,engine_fault_prob=0.1,worker_kill_prob=0.05``.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass, fields

__all__ = [
    "InjectedEngineFault",
    "ServiceFaultInjector",
    "ServiceFaultPlan",
    "FAULTS_ENV_VAR",
]

FAULTS_ENV_VAR = "REPRO_SERVICE_FAULTS"
"""Environment variable holding a default fault spec for the server."""


class InjectedEngineFault(RuntimeError):
    """A deterministic, injected engine failure (not a real bug)."""


@dataclass(frozen=True)
class ServiceFaultPlan:
    """A seeded, declarative description of service-path faults.

    Probabilities apply independently per opportunity: per executed
    query group for engine faults, per dispatched batch for stalls and
    worker kills, per cache read for corruption, per dispatch tick for
    OOM onset.  ``oom_hold_ticks`` is how many ticks a simulated OOM
    episode lasts once it starts.
    """

    seed: int = 0
    engine_fault_prob: float = 0.0
    stall_prob: float = 0.0
    stall_ms: float = 20.0
    worker_kill_prob: float = 0.0
    cache_corrupt_prob: float = 0.0
    oom_prob: float = 0.0
    oom_pressure: float = 1.0
    oom_hold_ticks: int = 5
    rank_crash_prob: float = 0.0
    partition_prob: float = 0.0
    partition_ticks: int = 3
    slow_replica_prob: float = 0.0
    slow_replica_ms: float = 50.0

    def __post_init__(self) -> None:
        for name in (
            "engine_fault_prob",
            "stall_prob",
            "worker_kill_prob",
            "cache_corrupt_prob",
            "oom_prob",
            "rank_crash_prob",
            "partition_prob",
            "slow_replica_prob",
        ):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.stall_ms < 0:
            raise ValueError("stall_ms must be non-negative")
        if self.oom_pressure <= 0:
            raise ValueError("oom_pressure must be positive")
        if self.oom_hold_ticks < 1:
            raise ValueError("oom_hold_ticks must be >= 1")
        if self.partition_ticks < 1:
            raise ValueError("partition_ticks must be >= 1")
        if self.slow_replica_ms < 0:
            raise ValueError("slow_replica_ms must be non-negative")

    @property
    def is_null(self) -> bool:
        """Whether this plan injects nothing at all."""
        return (
            self.engine_fault_prob == 0.0
            and self.stall_prob == 0.0
            and self.worker_kill_prob == 0.0
            and self.cache_corrupt_prob == 0.0
            and self.oom_prob == 0.0
            and self.rank_crash_prob == 0.0
            and self.partition_prob == 0.0
            and self.slow_replica_prob == 0.0
        )

    @classmethod
    def from_spec(cls, spec: str) -> "ServiceFaultPlan":
        """Parse a ``key=value[,key=value...]`` spec (field names of
        this dataclass; ints and floats inferred)."""
        kwargs: dict[str, object] = {}
        known = {f.name: f.type for f in fields(cls)}
        for chunk in spec.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if "=" not in chunk:
                raise ValueError(
                    f"bad fault spec item {chunk!r}: expected key=value"
                )
            key, raw = chunk.split("=", 1)
            key = key.strip()
            if key not in known:
                raise ValueError(
                    f"unknown fault spec key {key!r}: one of {sorted(known)}"
                )
            if key in ("seed", "oom_hold_ticks", "partition_ticks"):
                kwargs[key] = int(raw)
            else:
                kwargs[key] = float(raw)
        return cls(**kwargs)  # type: ignore[arg-type]

    @classmethod
    def from_env(cls) -> "ServiceFaultPlan | None":
        """The plan named by :data:`FAULTS_ENV_VAR`, or ``None``."""
        spec = os.environ.get(FAULTS_ENV_VAR, "").strip()
        if not spec:
            return None
        return cls.from_spec(spec)


class ServiceFaultInjector:
    """Runtime oracle for a :class:`ServiceFaultPlan`.

    All decisions come from one ``random.Random(seed)`` consumed in
    dispatch-loop order; every injected event is counted so the chaos
    harness can assert the schedule actually fired.
    """

    def __init__(self, plan: ServiceFaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self.engine_faults = 0
        self.stalls = 0
        self.worker_kills = 0
        self.cache_corruptions = 0
        self.oom_episodes = 0
        self._oom_ticks_left = 0
        self.rank_crashes = 0
        self.partitions = 0
        self.slow_routes = 0

    # -- dispatch-path faults -------------------------------------------
    def should_engine_fault(self) -> bool:
        """Consulted once per executed query group."""
        p = self.plan.engine_fault_prob
        if p and self._rng.random() < p:
            self.engine_faults += 1
            return True
        return False

    def stall_s(self) -> float:
        """Seconds the dispatcher should stall before this batch
        (``0.0`` = no stall).  Consulted once per batch."""
        p = self.plan.stall_prob
        if p and self._rng.random() < p:
            self.stalls += 1
            return self.plan.stall_ms / 1000.0
        return 0.0

    def should_kill_worker(self) -> bool:
        """Whether to SIGKILL one pool worker before this batch's pool
        pass.  Consulted once per parallel batch; the caller performs
        the kill (it owns the pids) and must call :meth:`note_kill`."""
        p = self.plan.worker_kill_prob
        return bool(p) and self._rng.random() < p

    def note_kill(self) -> None:
        self.worker_kills += 1

    # -- cache faults ----------------------------------------------------
    def should_corrupt(self) -> bool:
        """Consulted once per result-cache hit."""
        p = self.plan.cache_corrupt_prob
        if p and self._rng.random() < p:
            self.cache_corruptions += 1
            return True
        return False

    def corrupt_payload(self, payload: dict[str, object]) -> dict[str, object]:
        """A *copy* of ``payload`` with its count flipped — the stored
        cache entry is untouched, modelling corruption on the read
        path.  The checksum is deliberately left stale so verification
        can catch the tear."""
        bad = dict(payload)
        bad["count"] = int(payload.get("count", 0)) + 1  # type: ignore[call-overload]
        return bad

    # -- memory faults ---------------------------------------------------
    def tick_oom(self) -> float | None:
        """Forced governor pressure for this dispatch tick (``None`` =
        no episode active).  Consulted once per tick; an episode lasts
        ``oom_hold_ticks`` ticks once it starts."""
        if self._oom_ticks_left > 0:
            self._oom_ticks_left -= 1
            return self.plan.oom_pressure
        p = self.plan.oom_prob
        if p and self._rng.random() < p:
            self.oom_episodes += 1
            self._oom_ticks_left = self.plan.oom_hold_ticks - 1
            return self.plan.oom_pressure
        return None

    # -- cluster faults --------------------------------------------------
    def route_fate(self) -> tuple[str, float]:
        """Fate of one routed attempt: ``("crash", 0)``,
        ``("partition", ticks)``, ``("slow", seconds)``, or
        ``("none", 0)``.  Consulted once per routed attempt, in routing
        order, so a seeded plan replays identically.  The router
        performs the fault (it owns the ranks); the counters here
        record that the schedule fired."""
        if self.plan.rank_crash_prob and (
            self._rng.random() < self.plan.rank_crash_prob
        ):
            self.rank_crashes += 1
            return ("crash", 0.0)
        if self.plan.partition_prob and (
            self._rng.random() < self.plan.partition_prob
        ):
            self.partitions += 1
            return ("partition", float(self.plan.partition_ticks))
        if self.plan.slow_replica_prob and (
            self._rng.random() < self.plan.slow_replica_prob
        ):
            self.slow_routes += 1
            return ("slow", self.plan.slow_replica_ms / 1000.0)
        return ("none", 0.0)

    # -- introspection ---------------------------------------------------
    def snapshot(self) -> dict[str, int]:
        """Counter snapshot for ``/metrics``."""
        return {
            "engine_faults": self.engine_faults,
            "stalls": self.stalls,
            "worker_kills": self.worker_kills,
            "cache_corruptions": self.cache_corruptions,
            "oom_episodes": self.oom_episodes,
            "rank_crashes": self.rank_crashes,
            "partitions": self.partitions,
            "slow_routes": self.slow_routes,
        }
