"""Graph substrate: CSR representation, builders, generators, IO.

Public surface re-exported here; see the individual modules for details.
"""

from .build import (
    empty_graph,
    from_edges,
    from_networkx,
    from_undirected_edges,
    to_networkx,
)
from .components import (
    induced_subgraph,
    is_weakly_connected,
    split_components,
    weakly_connected_components,
)
from .csr import CSRGraph, GraphFormatError
from .degree import DegreeSummary, degree_histogram, degree_summary, total_degrees
from .generators import (
    chain_graph,
    clique_graph,
    cycle_graph,
    mesh_graph,
    random_graph,
    road_network_graph,
    social_graph,
    star_graph,
)
from .io import (
    convert_cuts_to_gsi,
    read_cuts_format,
    read_gsi_format,
    write_cuts_format,
    write_gsi_format,
)
from .queries import QUERY_SIZES, all_query_sets, atlas_graphs, paper_query_set

__all__ = [
    "CSRGraph",
    "GraphFormatError",
    "from_edges",
    "from_undirected_edges",
    "from_networkx",
    "to_networkx",
    "empty_graph",
    "weakly_connected_components",
    "is_weakly_connected",
    "split_components",
    "induced_subgraph",
    "DegreeSummary",
    "degree_summary",
    "degree_histogram",
    "total_degrees",
    "mesh_graph",
    "chain_graph",
    "clique_graph",
    "star_graph",
    "cycle_graph",
    "social_graph",
    "road_network_graph",
    "random_graph",
    "write_cuts_format",
    "read_cuts_format",
    "write_gsi_format",
    "read_gsi_format",
    "convert_cuts_to_gsi",
    "QUERY_SIZES",
    "all_query_sets",
    "atlas_graphs",
    "paper_query_set",
]
