"""(Weakly) connected components and the paper's composition rules.

Paper §4 (end): cuTS assumes both graphs are (weakly) connected.  If the
*query* graph is disconnected, it is split into components, each solved
independently, and the final answer is the **cross product** of component
solutions (with the injectivity caveat handled by the caller — see
:func:`repro.core.matcher` which filters overlapping cross products).  If
the *data* graph is disconnected, it is split and the answer is the
**union** of per-component answers.
"""

from __future__ import annotations

import numpy as np

from .build import from_edges
from .csr import CSRGraph

__all__ = [
    "weakly_connected_components",
    "is_weakly_connected",
    "split_components",
    "induced_subgraph",
]


def weakly_connected_components(graph: CSRGraph) -> np.ndarray:
    """Label each vertex with its weakly-connected-component id.

    Uses an iterative label-propagation over the union adjacency (out plus
    in edges), vectorised as repeated ``np.minimum.at`` sweeps — the
    standard pointer-jumping style approach; O(E · diameter-ish) but fully
    array-based.

    Returns
    -------
    An ``int64`` array ``comp`` of length ``|V|``; components are numbered
    ``0..k-1`` in order of their smallest vertex id.
    """
    n = graph.num_vertices
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    labels = np.arange(n, dtype=np.int64)
    src = np.repeat(np.arange(n, dtype=np.int64), graph.out_degrees)
    dst = graph.indices
    while True:
        # Propagate the minimum label across each edge in both directions.
        new = labels.copy()
        np.minimum.at(new, dst, labels[src])
        np.minimum.at(new, src, labels[dst])
        # Pointer jumping: compress label chains.
        new = new[new]
        if np.array_equal(new, labels):
            break
        labels = new
    # Renumber to consecutive 0..k-1 by first appearance.
    _, comp = np.unique(labels, return_inverse=True)
    return comp.astype(np.int64)


def is_weakly_connected(graph: CSRGraph) -> bool:
    """Whether the graph has exactly one weakly connected component."""
    if graph.num_vertices <= 1:
        return True
    return bool(weakly_connected_components(graph).max() == 0)


def induced_subgraph(
    graph: CSRGraph, vertices: np.ndarray, name: str | None = None
) -> tuple[CSRGraph, np.ndarray]:
    """Induced subgraph on ``vertices``.

    Returns ``(subgraph, mapping)`` where ``mapping[i]`` is the original
    vertex id of subgraph vertex ``i``.
    """
    vertices = np.unique(np.asarray(vertices, dtype=np.int64))
    inverse = -np.ones(graph.num_vertices, dtype=np.int64)
    inverse[vertices] = np.arange(len(vertices), dtype=np.int64)
    edges = graph.edge_list()
    if edges.size:
        keep = (inverse[edges[:, 0]] >= 0) & (inverse[edges[:, 1]] >= 0)
        edges = inverse[edges[keep]]
    sub = from_edges(
        edges,
        num_vertices=len(vertices),
        name=name or f"{graph.name}[{len(vertices)}]",
    )
    if graph.labels is not None:
        sub = sub.with_labels(graph.labels[vertices])
    return sub, vertices


def split_components(graph: CSRGraph) -> list[tuple[CSRGraph, np.ndarray]]:
    """Split into weakly connected components.

    Returns a list of ``(component_graph, mapping)`` pairs ordered by the
    smallest original vertex id in each component.
    """
    comp = weakly_connected_components(graph)
    out: list[tuple[CSRGraph, np.ndarray]] = []
    for c in range(int(comp.max()) + 1 if comp.size else 0):
        members = np.nonzero(comp == c)[0]
        out.append(induced_subgraph(graph, members, name=f"{graph.name}#c{c}"))
    return out
