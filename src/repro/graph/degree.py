"""Degree statistics and degree-distribution summaries.

The cuTS candidate filter (paper Definition 5) and the virtual-warp sizing
heuristic (§4.1.2: "the size of the virtual warp is determined by the
average degree of the node") both consume degree information; this module
centralises those computations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .csr import CSRGraph

__all__ = ["DegreeSummary", "degree_summary", "total_degrees", "degree_histogram"]


@dataclass(frozen=True)
class DegreeSummary:
    """Summary statistics of a graph's degree distribution."""

    num_vertices: int
    num_edges: int
    max_out: int
    max_in: int
    mean_out: float
    median_out: float
    p99_out: float
    gini: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"|V|={self.num_vertices} |E|={self.num_edges} "
            f"max_out={self.max_out} mean_out={self.mean_out:.2f} "
            f"p99_out={self.p99_out:.1f} gini={self.gini:.3f}"
        )


def total_degrees(graph: CSRGraph) -> np.ndarray:
    """Total degree (in + out) per vertex.

    The paper's root selection uses "the node with the maximum degree (in
    degree and out degree)".
    """
    return graph.out_degrees + graph.in_degrees


def degree_histogram(graph: CSRGraph) -> np.ndarray:
    """``hist[d]`` = number of vertices with out-degree ``d``."""
    if graph.num_vertices == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(graph.out_degrees)


def _gini(values: np.ndarray) -> float:
    """Gini coefficient of a non-negative sample (0 = uniform)."""
    if values.size == 0:
        return 0.0
    v = np.sort(values.astype(np.float64))
    total = v.sum()
    if total == 0:
        return 0.0
    n = v.size
    cum = np.cumsum(v)
    return float((n + 1 - 2 * (cum / total).sum()) / n)


def degree_summary(graph: CSRGraph) -> DegreeSummary:
    """Compute a :class:`DegreeSummary` for ``graph``."""
    outs = graph.out_degrees
    if graph.num_vertices == 0:
        return DegreeSummary(0, 0, 0, 0, 0.0, 0.0, 0.0, 0.0)
    return DegreeSummary(
        num_vertices=graph.num_vertices,
        num_edges=graph.num_edges,
        max_out=int(outs.max()),
        max_in=graph.max_in_degree,
        mean_out=float(outs.mean()),
        median_out=float(np.median(outs)),
        p99_out=float(np.percentile(outs, 99)),
        gini=_gini(outs),
    )
