"""Constructors for :class:`~repro.graph.csr.CSRGraph`.

The paper (§2.1) works on directed graphs and converts an undirected graph
to a directed one "by adding an edge (v, u) for every edge (u, v)".  These
builders implement that convention, deduplicate parallel edges, drop
self-loops (a vertex can never match itself twice in an injective
embedding, and the paper's query generation produces simple graphs), and
produce sorted dual-CSR arrays in one vectorised pass.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from .csr import CSRGraph, GraphFormatError

__all__ = [
    "from_edges",
    "from_undirected_edges",
    "from_networkx",
    "to_networkx",
    "empty_graph",
]


def _normalise_edges(
    edges: Iterable[Sequence[int]] | np.ndarray,
    self_loops: str = "drop",
) -> tuple[np.ndarray, int]:
    """Coerce an edge iterable to a deduplicated ``(E, 2)`` int64 array.

    Duplicates collapse to one edge.  Self-loops are dropped by default
    (``self_loops="drop"``) or rejected with :class:`GraphFormatError`
    (``self_loops="error"``, for pipelines that treat a loop as input
    corruption).  Returns the array plus the inferred vertex count
    (``max id + 1`` over the *raw* edges, so a vertex mentioned only in
    a dropped self-loop still counts).
    """
    if self_loops not in ("drop", "error"):
        raise ValueError(
            f"self_loops must be 'drop' or 'error', got {self_loops!r}"
        )
    arr = np.asarray(list(edges) if not isinstance(edges, np.ndarray) else edges)
    if arr.size == 0:
        return np.zeros((0, 2), dtype=np.int64), 0
    arr = arr.reshape(-1, 2).astype(np.int64, copy=False)
    if arr.min() < 0:
        raise GraphFormatError(
            "vertex ids must be non-negative; edge list contains "
            f"id {int(arr.min())}"
        )
    inferred_n = int(arr.max()) + 1
    loops = arr[:, 0] == arr[:, 1]
    if loops.any():
        if self_loops == "error":
            first = int(arr[np.argmax(loops), 0])
            raise GraphFormatError(
                f"edge list contains {int(loops.sum())} self-loop(s) "
                f"(first at vertex {first}) and self_loops='error'"
            )
        arr = arr[~loops]
    if arr.size == 0:
        return np.zeros((0, 2), dtype=np.int64), inferred_n
    return np.unique(arr, axis=0), inferred_n


def _csr_from_sorted_edges(
    edges: np.ndarray, num_vertices: int
) -> tuple[np.ndarray, np.ndarray]:
    """Build (indptr, indices) from an edge array sorted by (src, dst)."""
    counts = np.bincount(edges[:, 0], minlength=num_vertices).astype(np.int64)
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    np.cumsum(counts, out=indptr[1:])
    return indptr, np.ascontiguousarray(edges[:, 1])


def from_edges(
    edges: Iterable[Sequence[int]] | np.ndarray,
    num_vertices: int | None = None,
    name: str = "graph",
    self_loops: str = "drop",
) -> CSRGraph:
    """Build a directed :class:`CSRGraph` from an edge list.

    Parameters
    ----------
    edges:
        Iterable of ``(u, v)`` pairs or an ``(E, 2)`` array.  Duplicates
        are removed.
    num_vertices:
        Explicit vertex count; defaults to ``max id + 1``.
    name:
        Dataset name carried into experiment tables.
    self_loops:
        ``"drop"`` (default) silently removes loops; ``"error"`` raises
        :class:`GraphFormatError` when one is present.
    """
    arr, inferred_n = _normalise_edges(edges, self_loops=self_loops)
    if num_vertices is None:
        num_vertices = inferred_n
    elif arr.size and int(arr.max()) >= num_vertices:
        raise GraphFormatError(
            f"edge references vertex {int(arr.max())} but num_vertices="
            f"{num_vertices} (dangling edge)"
        )
    # Out-CSR: sort by (src, dst) — np.unique in _normalise_edges already
    # produced lexicographic order, so rows are ready as-is.
    indptr, indices = _csr_from_sorted_edges(arr, num_vertices)
    # In-CSR: sort the flipped edges.
    flipped = arr[:, ::-1]
    order = np.lexsort((flipped[:, 1], flipped[:, 0]))
    flipped = flipped[order]
    rindptr, rindices = _csr_from_sorted_edges(flipped, num_vertices)
    return CSRGraph(
        num_vertices=num_vertices,
        indptr=indptr,
        indices=indices,
        rindptr=rindptr,
        rindices=rindices,
        name=name,
    )


def from_undirected_edges(
    edges: Iterable[Sequence[int]] | np.ndarray,
    num_vertices: int | None = None,
    name: str = "graph",
    self_loops: str = "drop",
) -> CSRGraph:
    """Build a bidirected :class:`CSRGraph` from an undirected edge list.

    Implements the paper's §2.1 conversion: every undirected edge
    ``{u, v}`` becomes the directed pair ``(u, v)`` and ``(v, u)``.
    ``self_loops`` follows :func:`from_edges`.
    """
    arr, inferred_n = _normalise_edges(edges, self_loops=self_loops)
    if arr.size:
        arr = np.concatenate([arr, arr[:, ::-1]], axis=0)
    if num_vertices is None:
        num_vertices = inferred_n
    return from_edges(arr, num_vertices=num_vertices, name=name)


def from_networkx(g, name: str | None = None) -> CSRGraph:
    """Convert a networkx (Di)Graph with integer-labelled nodes.

    Non-integer or sparse labellings are compacted to ``0..n-1`` in sorted
    node order.
    """
    import networkx as nx

    nodes = sorted(g.nodes())
    relabel = {v: i for i, v in enumerate(nodes)}
    edges = np.asarray(
        [(relabel[u], relabel[v]) for u, v in g.edges()], dtype=np.int64
    ).reshape(-1, 2)
    build = from_edges if isinstance(g, nx.DiGraph) else from_undirected_edges
    return build(edges, num_vertices=len(nodes), name=name or "networkx")


def to_networkx(graph: CSRGraph):
    """Convert to a ``networkx.DiGraph`` (for oracle cross-checks).

    Vertex labels, when present, become a ``label`` node attribute.
    """
    import networkx as nx

    g = nx.DiGraph()
    g.add_nodes_from(range(graph.num_vertices))
    g.add_edges_from(map(tuple, graph.edge_list()))
    if graph.labels is not None:
        nx.set_node_attributes(
            g, {v: int(graph.labels[v]) for v in range(graph.num_vertices)},
            "label",
        )
    return g


def empty_graph(num_vertices: int = 0, name: str = "empty") -> CSRGraph:
    """An edgeless graph on ``num_vertices`` vertices."""
    return from_edges(np.zeros((0, 2), dtype=np.int64), num_vertices, name)
