"""Graph text formats.

The cuTS artifact distributes graphs in a simple edge-list text format and
ships ``convert_ours_to_gsi.py`` to translate to GSI's format.  We
reproduce both:

* **cuTS format**: first line ``<num_vertices> <num_edges>``, then one
  ``u v`` directed edge per line.
* **GSI format** (simplified, unlabeled): a header line ``t <n> <m>``,
  one ``v <id> <label>`` line per vertex and one ``e <u> <v> <label>``
  line per edge — the structure of GSI's ``.g`` files with all labels 0.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .build import from_edges
from .csr import CSRGraph, GraphFormatError

__all__ = [
    "GraphFormatError",
    "write_cuts_format",
    "read_cuts_format",
    "write_gsi_format",
    "read_gsi_format",
    "convert_cuts_to_gsi",
]


def _validate_edges(edges: np.ndarray, n: int, path: Path) -> None:
    """Reject negative and dangling vertex ids with file context."""
    if edges.size == 0:
        return
    if edges.min() < 0:
        raise GraphFormatError(
            f"{path}: negative vertex id {int(edges.min())} in edge list"
        )
    if edges.max() >= n:
        raise GraphFormatError(
            f"{path}: edge references vertex {int(edges.max())} but the "
            f"header declares only {n} vertices (dangling edge)"
        )


def write_cuts_format(graph: CSRGraph, path: str | Path) -> None:
    """Write a graph in the cuTS edge-list format."""
    path = Path(path)
    edges = graph.edge_list()
    with path.open("w") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        np.savetxt(fh, edges, fmt="%d")


def read_cuts_format(
    path: str | Path, name: str | None = None, self_loops: str = "drop"
) -> CSRGraph:
    """Read a graph written by :func:`write_cuts_format`.

    Malformed inputs (bad header, wrong edge count, negative or dangling
    vertex ids) raise :class:`GraphFormatError` with the offending file
    named.  ``self_loops`` follows :func:`repro.graph.build.from_edges`:
    ``"drop"`` (default) removes loops, ``"error"`` rejects them.
    """
    path = Path(path)
    with path.open() as fh:
        header = fh.readline().split()
        if len(header) != 2:
            raise GraphFormatError(f"{path}: malformed header {header!r}")
        try:
            n, m = int(header[0]), int(header[1])
        except ValueError:
            raise GraphFormatError(
                f"{path}: non-integer header {header!r}"
            ) from None
        if n < 0 or m < 0:
            raise GraphFormatError(
                f"{path}: header declares negative counts {header!r}"
            )
        if m > 0:
            try:
                edges = np.loadtxt(fh, dtype=np.int64, ndmin=2)
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}: unparseable edge list ({exc})"
                ) from None
        else:
            edges = np.zeros((0, 2), dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if edges.ndim != 2 or edges.shape[1] != 2:
        raise GraphFormatError(
            f"{path}: edge rows must have two columns, got shape "
            f"{edges.shape}"
        )
    if len(edges) != m:
        raise GraphFormatError(
            f"{path}: header says {m} edges, found {len(edges)}"
        )
    _validate_edges(edges, n, path)
    return from_edges(
        edges, num_vertices=n, name=name or path.stem, self_loops=self_loops
    )


def write_gsi_format(graph: CSRGraph, path: str | Path) -> None:
    """Write a graph in the (simplified) GSI format.

    Vertex labels are emitted when present; unlabeled graphs write 0s
    (GSI's files always carry a label column).
    """
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"t {graph.num_vertices} {graph.num_edges}\n")
        for v in range(graph.num_vertices):
            lab = int(graph.labels[v]) if graph.labels is not None else 0
            fh.write(f"v {v} {lab}\n")
        for u, v in graph.edge_list():
            fh.write(f"e {u} {v} 0\n")


def read_gsi_format(
    path: str | Path, name: str | None = None, self_loops: str = "drop"
) -> CSRGraph:
    """Read a graph written by :func:`write_gsi_format`.

    A nonzero label column is attached as vertex labels; an all-zero
    column is treated as unlabeled (our ``labels=None`` convention).
    Structural problems raise :class:`GraphFormatError`; ``self_loops``
    follows :func:`read_cuts_format`.
    """
    path = Path(path)
    n = 0
    edges: list[tuple[int, int]] = []
    labels: dict[int, int] = {}
    with path.open() as fh:
        for lineno, line in enumerate(fh, start=1):
            parts = line.split()
            if not parts:
                continue
            try:
                if parts[0] == "t":
                    n = int(parts[1])
                elif parts[0] == "v":
                    labels[int(parts[1])] = int(parts[2])
                elif parts[0] == "e":
                    edges.append((int(parts[1]), int(parts[2])))
            except (IndexError, ValueError):
                raise GraphFormatError(
                    f"{path}:{lineno}: malformed record {line.rstrip()!r}"
                ) from None
    if n < 0:
        raise GraphFormatError(f"{path}: header declares {n} vertices")
    for v in labels:
        if v < 0 or v >= n:
            raise GraphFormatError(
                f"{path}: vertex record for id {v} outside 0..{n - 1}"
            )
    arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    _validate_edges(arr, n, path)
    g = from_edges(
        arr, num_vertices=n, name=name or path.stem, self_loops=self_loops
    )
    if any(labels.values()):
        lab = np.zeros(n, dtype=np.int64)
        for v, l in labels.items():
            lab[v] = l
        g = g.with_labels(lab)
    return g


def convert_cuts_to_gsi(src: str | Path, dst: str | Path) -> None:
    """File-to-file conversion, mirroring the artifact's converter script."""
    write_gsi_format(read_cuts_format(src), dst)
