"""Graph text formats.

The cuTS artifact distributes graphs in a simple edge-list text format and
ships ``convert_ours_to_gsi.py`` to translate to GSI's format.  We
reproduce both:

* **cuTS format**: first line ``<num_vertices> <num_edges>``, then one
  ``u v`` directed edge per line.
* **GSI format** (simplified, unlabeled): a header line ``t <n> <m>``,
  one ``v <id> <label>`` line per vertex and one ``e <u> <v> <label>``
  line per edge — the structure of GSI's ``.g`` files with all labels 0.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .build import from_edges
from .csr import CSRGraph

__all__ = [
    "write_cuts_format",
    "read_cuts_format",
    "write_gsi_format",
    "read_gsi_format",
    "convert_cuts_to_gsi",
]


def write_cuts_format(graph: CSRGraph, path: str | Path) -> None:
    """Write a graph in the cuTS edge-list format."""
    path = Path(path)
    edges = graph.edge_list()
    with path.open("w") as fh:
        fh.write(f"{graph.num_vertices} {graph.num_edges}\n")
        np.savetxt(fh, edges, fmt="%d")


def read_cuts_format(path: str | Path, name: str | None = None) -> CSRGraph:
    """Read a graph written by :func:`write_cuts_format`."""
    path = Path(path)
    with path.open() as fh:
        header = fh.readline().split()
        if len(header) != 2:
            raise ValueError(f"{path}: malformed header {header!r}")
        n, m = int(header[0]), int(header[1])
        if m > 0:
            edges = np.loadtxt(fh, dtype=np.int64, ndmin=2)
        else:
            edges = np.zeros((0, 2), dtype=np.int64)
    if edges.size == 0:
        edges = edges.reshape(0, 2)
    if len(edges) != m:
        raise ValueError(f"{path}: header says {m} edges, found {len(edges)}")
    return from_edges(edges, num_vertices=n, name=name or path.stem)


def write_gsi_format(graph: CSRGraph, path: str | Path) -> None:
    """Write a graph in the (simplified) GSI format.

    Vertex labels are emitted when present; unlabeled graphs write 0s
    (GSI's files always carry a label column).
    """
    path = Path(path)
    with path.open("w") as fh:
        fh.write(f"t {graph.num_vertices} {graph.num_edges}\n")
        for v in range(graph.num_vertices):
            lab = int(graph.labels[v]) if graph.labels is not None else 0
            fh.write(f"v {v} {lab}\n")
        for u, v in graph.edge_list():
            fh.write(f"e {u} {v} 0\n")


def read_gsi_format(path: str | Path, name: str | None = None) -> CSRGraph:
    """Read a graph written by :func:`write_gsi_format`.

    A nonzero label column is attached as vertex labels; an all-zero
    column is treated as unlabeled (our ``labels=None`` convention).
    """
    path = Path(path)
    n = 0
    edges: list[tuple[int, int]] = []
    labels: dict[int, int] = {}
    with path.open() as fh:
        for line in fh:
            parts = line.split()
            if not parts:
                continue
            if parts[0] == "t":
                n = int(parts[1])
            elif parts[0] == "v":
                labels[int(parts[1])] = int(parts[2])
            elif parts[0] == "e":
                edges.append((int(parts[1]), int(parts[2])))
    arr = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    g = from_edges(arr, num_vertices=n, name=name or path.stem)
    if any(labels.values()):
        lab = np.zeros(n, dtype=np.int64)
        for v, l in labels.items():
            lab[v] = l
        g = g.with_labels(lab)
    return g


def convert_cuts_to_gsi(src: str | Path, dst: str | Path) -> None:
    """File-to-file conversion, mirroring the artifact's converter script."""
    write_gsi_format(read_cuts_format(src), dst)
