"""Compressed Sparse Row graph representation.

This is the data-graph substrate of the cuTS reproduction.  The paper
(§4.1.2) stores the data graph in CSR so that "finding the neighbors for
performing the intersection can be done with O(1) time cost".  We keep
*both* orientations:

* the **out**-CSR (``indptr`` / ``indices``) — the children lists used by
  the c-intersection micro-kernel and the BFS expansion, and
* the **in**-CSR (``rindptr`` / ``rindices``) — the parent lists used by
  the p-intersection micro-kernel.

Neighbour lists are kept **sorted** so that edge-existence queries are a
vectorised ``searchsorted`` (the NumPy analogue of a warp doing a binary
probe into a coalesced adjacency segment).

All arrays are contiguous ``int64`` NumPy arrays; every accessor returns
views, never copies, per the HPC guide's "views, not copies" rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Final

import numpy as np

__all__ = ["CSRGraph", "GraphFormatError", "INDEX_DTYPE"]


class GraphFormatError(ValueError):
    """A graph input failed structural validation.

    Raised for malformed on-disk graph files (bad headers, negative or
    dangling vertex ids, disallowed self-loops) and for CSR arrays that
    violate the representation invariants (non-monotone offsets,
    out-of-range column indices).  Subclasses :class:`ValueError` so
    pre-existing ``except ValueError`` callers keep working.
    """

INDEX_DTYPE: Final[np.dtype] = np.dtype(np.int64)
"""The one integer dtype for CSR offsets, indices, and labels.

An explicit, asserted choice (analysis rule RP003): implicit NumPy
integer widths are platform-dependent (``np.arange(n)`` is int32 on
Windows), CSR offsets on paper-scale graphs exceed int32, and the
shared-memory segment layout (:mod:`repro.parallel.sharedmem`) depends
on every array having this exact itemsize.  :class:`CSRGraph` rejects
anything else at construction time."""


@dataclass(frozen=True)
class CSRGraph:
    """A directed graph in dual (out + in) CSR form.

    Parameters
    ----------
    num_vertices:
        Number of vertices ``|V|``; vertex ids are ``0 .. |V|-1``.
    indptr, indices:
        Out-adjacency in CSR form.  ``indices[indptr[u]:indptr[u+1]]`` is
        the sorted list of children of ``u``.
    rindptr, rindices:
        In-adjacency in CSR form.  ``rindices[rindptr[u]:rindptr[u+1]]``
        is the sorted list of parents of ``u``.
    name:
        Optional human-readable dataset name (used in experiment tables).
    labels:
        Optional per-vertex integer labels (length ``|V|``).  When both
        data and query graphs carry labels, matchers additionally require
        label equality (the labeled subgraph isomorphism of GSI's
        domain); ``None`` means unlabeled, the regime the paper
        evaluates.
    """

    num_vertices: int
    indptr: np.ndarray
    indices: np.ndarray
    rindptr: np.ndarray
    rindices: np.ndarray
    name: str = field(default="graph", compare=False)
    labels: np.ndarray | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        n = self.num_vertices
        if n < 0:
            raise ValueError(f"num_vertices must be >= 0, got {n}")
        for attr in ("indptr", "indices", "rindptr", "rindices", "labels"):
            arr = getattr(self, attr)
            if arr is not None and arr.dtype != INDEX_DTYPE:
                raise ValueError(
                    f"{attr} must have dtype {INDEX_DTYPE} "
                    f"(INDEX_DTYPE), got {arr.dtype}"
                )
        if self.labels is not None and self.labels.shape != (n,):
            raise ValueError(
                f"labels must have shape ({n},), got {self.labels.shape}"
            )
        if self.indptr.shape != (n + 1,):
            raise ValueError(
                f"indptr must have shape ({n + 1},), got {self.indptr.shape}"
            )
        if self.rindptr.shape != (n + 1,):
            raise ValueError(
                f"rindptr must have shape ({n + 1},), got {self.rindptr.shape}"
            )
        if self.indptr[0] != 0 or self.indptr[-1] != len(self.indices):
            raise GraphFormatError("indptr endpoints inconsistent with indices")
        if self.rindptr[0] != 0 or self.rindptr[-1] != len(self.rindices):
            raise GraphFormatError("rindptr endpoints inconsistent with rindices")
        if n and np.any(np.diff(self.indptr) < 0):
            bad = int(np.argmax(np.diff(self.indptr) < 0))
            raise GraphFormatError(
                f"indptr offsets must be non-decreasing; indptr[{bad + 1}]="
                f"{int(self.indptr[bad + 1])} < indptr[{bad}]="
                f"{int(self.indptr[bad])}"
            )
        if n and np.any(np.diff(self.rindptr) < 0):
            bad = int(np.argmax(np.diff(self.rindptr) < 0))
            raise GraphFormatError(
                f"rindptr offsets must be non-decreasing; rindptr[{bad + 1}]="
                f"{int(self.rindptr[bad + 1])} < rindptr[{bad}]="
                f"{int(self.rindptr[bad])}"
            )
        if len(self.indices) != len(self.rindices):
            raise ValueError(
                "out- and in-CSR must describe the same edge set: "
                f"{len(self.indices)} != {len(self.rindices)} edges"
            )
        if len(self.indices) and n:
            if self.indices.min() < 0:
                raise GraphFormatError(
                    f"indices contain negative vertex id {int(self.indices.min())}"
                )
            if self.indices.max() >= n:
                raise GraphFormatError(
                    "indices contain out-of-range vertex id "
                    f"{int(self.indices.max())} (dangling edge; "
                    f"graph has {n} vertices)"
                )
            if self.rindices.min() < 0:
                raise GraphFormatError(
                    "rindices contain negative vertex id "
                    f"{int(self.rindices.min())}"
                )
            if self.rindices.max() >= n:
                raise GraphFormatError(
                    "rindices contain out-of-range vertex id "
                    f"{int(self.rindices.max())} (dangling edge; "
                    f"graph has {n} vertices)"
                )

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_edges(self) -> int:
        """Number of directed edges."""
        return int(len(self.indices))

    @property
    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex (a fresh small array, O(|V|))."""
        return np.diff(self.indptr)

    @property
    def in_degrees(self) -> np.ndarray:
        """In-degree of every vertex."""
        return np.diff(self.rindptr)

    @property
    def max_out_degree(self) -> int:
        """Maximum out-degree (``0`` for an empty graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self.out_degrees.max())

    @property
    def max_in_degree(self) -> int:
        """Maximum in-degree (``0`` for an empty graph)."""
        if self.num_vertices == 0:
            return 0
        return int(self.in_degrees.max())

    @property
    def average_out_degree(self) -> float:
        """Mean out-degree; 0.0 for the empty graph."""
        if self.num_vertices == 0:
            return 0.0
        return self.num_edges / self.num_vertices

    # ------------------------------------------------------------------
    # Neighbourhood access (views)
    # ------------------------------------------------------------------
    def children(self, u: int) -> np.ndarray:
        """Sorted out-neighbours of ``u`` (a view, not a copy)."""
        return self.indices[self.indptr[u] : self.indptr[u + 1]]

    def parents(self, u: int) -> np.ndarray:
        """Sorted in-neighbours of ``u`` (a view, not a copy)."""
        return self.rindices[self.rindptr[u] : self.rindptr[u + 1]]

    def out_degree(self, u: int) -> int:
        """Out-degree of a single vertex."""
        return int(self.indptr[u + 1] - self.indptr[u])

    def in_degree(self, u: int) -> int:
        """In-degree of a single vertex."""
        return int(self.rindptr[u + 1] - self.rindptr[u])

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``(u, v)`` exists (binary search)."""
        row = self.children(u)
        pos = int(np.searchsorted(row, v))
        return pos < len(row) and int(row[pos]) == v

    # ------------------------------------------------------------------
    # Vectorised edge-existence probe — the heart of the fused kernel
    # ------------------------------------------------------------------
    def has_edges(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Vectorised edge-existence: does ``(sources[i], targets[i])`` exist?

        This models a virtual warp probing the coalesced adjacency segment
        of each source vertex; it is the inner operation of both the
        c-intersection membership check and the fused search kernel.

        Parameters
        ----------
        sources, targets:
            Equal-length integer arrays of vertex ids.

        Returns
        -------
        A boolean array ``mask`` with ``mask[i] == has_edge(sources[i],
        targets[i])``.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise ValueError("sources and targets must have equal shape")
        if sources.size == 0:
            return np.zeros(0, dtype=bool)
        starts = self.indptr[sources]
        ends = self.indptr[sources + 1]
        # Binary-search each target inside its source's sorted segment.
        pos = _segmented_searchsorted(self.indices, starts, ends, targets)
        in_range = pos < ends
        found = np.zeros(sources.shape, dtype=bool)
        # Guard the gather: only compare where pos is a valid slot.
        safe = np.minimum(pos, len(self.indices) - 1 if len(self.indices) else 0)
        if len(self.indices):
            found = in_range & (self.indices[safe] == targets)
        return found

    def has_redges(self, sources: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Vectorised reverse-edge existence: does ``(targets[i], sources[i])``
        exist, probed through the in-CSR of ``sources[i]``?

        Equivalent to ``has_edges(targets, sources)`` but reads the parent
        lists — this is what the p-intersection micro-kernel does.
        """
        sources = np.asarray(sources, dtype=np.int64)
        targets = np.asarray(targets, dtype=np.int64)
        if sources.shape != targets.shape:
            raise ValueError("sources and targets must have equal shape")
        if sources.size == 0:
            return np.zeros(0, dtype=bool)
        starts = self.rindptr[sources]
        ends = self.rindptr[sources + 1]
        pos = _segmented_searchsorted(self.rindices, starts, ends, targets)
        in_range = pos < ends
        found = np.zeros(sources.shape, dtype=bool)
        safe = np.minimum(pos, len(self.rindices) - 1 if len(self.rindices) else 0)
        if len(self.rindices):
            found = in_range & (self.rindices[safe] == targets)
        return found

    # ------------------------------------------------------------------
    # Conversions / dunder
    # ------------------------------------------------------------------
    def edge_list(self) -> np.ndarray:
        """Return an ``(E, 2)`` array of directed edges, CSR order."""
        src = np.repeat(np.arange(self.num_vertices, dtype=np.int64), self.out_degrees)
        return np.column_stack([src, self.indices])

    def reverse(self) -> "CSRGraph":
        """The transpose graph (every edge flipped); O(1), swaps views."""
        return CSRGraph(
            num_vertices=self.num_vertices,
            indptr=self.rindptr,
            indices=self.rindices,
            rindptr=self.indptr,
            rindices=self.indices,
            name=f"{self.name}^T",
            labels=self.labels,
        )

    def with_labels(self, labels) -> "CSRGraph":
        """A copy of this graph carrying per-vertex integer labels."""
        arr = np.ascontiguousarray(labels, dtype=np.int64)
        return CSRGraph(
            num_vertices=self.num_vertices,
            indptr=self.indptr,
            indices=self.indices,
            rindptr=self.rindptr,
            rindices=self.rindices,
            name=self.name,
            labels=arr,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSRGraph(name={self.name!r}, |V|={self.num_vertices}, "
            f"|E|={self.num_edges})"
        )


def _segmented_searchsorted(
    flat: np.ndarray, starts: np.ndarray, ends: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Binary-search ``values[i]`` inside ``flat[starts[i]:ends[i]]``.

    Each segment of ``flat`` is sorted.  Returns the *global* insertion
    position within ``flat`` (clamped to ``[starts[i], ends[i]]``).

    Implemented as a branch-free vectorised binary search so one call
    services every lane of the virtual warp at once.
    """
    lo = starts.astype(np.int64).copy()
    hi = ends.astype(np.int64).copy()
    if flat.size == 0:
        return lo
    # Classic vectorised binary search: ~log2(max segment length) rounds.
    # Each round is one coalesced gather + compare across all lanes.
    while True:
        active = lo < hi
        if not active.any():
            break
        mid = (lo + hi) >> 1
        # Gather is safe: mid < hi <= len(flat) wherever active.
        mid_safe = np.where(active, mid, 0)
        less = flat[mid_safe] < values
        go_right = active & less
        go_left = active & ~less
        lo[go_right] = mid[go_right] + 1
        hi[go_left] = mid[go_left]
    return lo
