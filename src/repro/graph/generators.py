"""Synthetic graph generators.

Two families:

1. **Toy structures** used by the paper's expository figures — the 4x4 mesh
   and linear-chain query of Fig. 2, cliques, stars, cycles.
2. **Dataset-class generators** standing in for the SNAP graphs of Table 2
   (enron, gowalla, wikiTalk, roadNet-PA/TX/CA), which are not available
   offline.  Each generator reproduces the *class* of degree distribution
   that drives the paper's phenomena:

   * email/social/communication graphs → heavy-tailed degrees via a
     preferential-attachment core plus random "community" edges;
   * road networks → near-planar lattices with unit-ish degrees and a
     sprinkling of diagonal shortcuts.

All generators are seeded and deterministic.  They return *undirected*
edge lists as ``(E, 2)`` arrays; callers bidirect them via
:func:`repro.graph.build.from_undirected_edges` (paper §2.1 convention).
"""

from __future__ import annotations

import numpy as np

from .build import from_undirected_edges
from .csr import CSRGraph

__all__ = [
    "mesh_graph",
    "chain_graph",
    "clique_graph",
    "star_graph",
    "cycle_graph",
    "preferential_attachment_edges",
    "community_noise_edges",
    "social_graph",
    "road_network_graph",
    "random_graph",
]


# ----------------------------------------------------------------------
# Toy structures (paper Figures 1 and 2)
# ----------------------------------------------------------------------
def mesh_graph(rows: int, cols: int, name: str | None = None) -> CSRGraph:
    """A ``rows x cols`` grid mesh (Fig. 2A uses 4x4), bidirected."""
    if rows <= 0 or cols <= 0:
        raise ValueError("mesh dimensions must be positive")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz = np.column_stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    vert = np.column_stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    edges = np.concatenate([horiz, vert], axis=0)
    return from_undirected_edges(
        edges, num_vertices=rows * cols, name=name or f"mesh{rows}x{cols}"
    )


def chain_graph(length: int, name: str | None = None) -> CSRGraph:
    """A simple path on ``length`` vertices (Fig. 2B query), bidirected."""
    if length <= 0:
        raise ValueError("length must be positive")
    v = np.arange(length, dtype=np.int64)
    edges = np.column_stack([v[:-1], v[1:]])
    return from_undirected_edges(edges, num_vertices=length, name=name or f"chain{length}")


def clique_graph(n: int, name: str | None = None) -> CSRGraph:
    """The complete graph K_n, bidirected (Table 1 uses K_5)."""
    if n <= 0:
        raise ValueError("n must be positive")
    i, j = np.triu_indices(n, k=1)
    edges = np.column_stack([i, j]).astype(np.int64)
    return from_undirected_edges(edges, num_vertices=n, name=name or f"K{n}")


def star_graph(leaves: int, name: str | None = None) -> CSRGraph:
    """A star with one hub and ``leaves`` leaves, bidirected."""
    if leaves < 0:
        raise ValueError("leaves must be >= 0")
    hub = np.zeros(leaves, dtype=np.int64)
    leaf = np.arange(1, leaves + 1, dtype=np.int64)
    return from_undirected_edges(
        np.column_stack([hub, leaf]), num_vertices=leaves + 1,
        name=name or f"star{leaves}",
    )


def cycle_graph(n: int, name: str | None = None) -> CSRGraph:
    """A cycle on ``n`` vertices, bidirected."""
    if n < 3:
        raise ValueError("a cycle needs at least 3 vertices")
    v = np.arange(n, dtype=np.int64)
    edges = np.column_stack([v, np.roll(v, -1)])
    return from_undirected_edges(edges, num_vertices=n, name=name or f"cycle{n}")


# ----------------------------------------------------------------------
# Dataset-class generators
# ----------------------------------------------------------------------
def preferential_attachment_edges(
    n: int, m: int, rng: np.random.Generator
) -> np.ndarray:
    """Barabási–Albert style undirected edges: each new vertex attaches to
    ``m`` existing vertices chosen proportionally to current degree.

    Produces the heavy-tailed degree distribution characteristic of the
    email/social/communication graphs in Table 2.
    """
    if n < m + 1:
        raise ValueError(f"need n >= m+1 (n={n}, m={m})")
    # Repeated-nodes trick: targets drawn uniformly from the multiset of
    # edge endpoints ~ degree-proportional sampling, fully O(E).
    edges = np.zeros((m * (n - m), 2), dtype=np.int64)
    # Seed: a small clique on the first m+1 vertices keeps the core dense.
    repeated: list[int] = list(range(m + 1)) * m
    pos = 0
    for v in range(m + 1, n):
        pool = np.asarray(repeated, dtype=np.int64)
        sampled = rng.choice(pool, size=4 * m, replace=True)
        # Deduplicate in sampled order (np.unique would sort by id and
        # bias attachment towards the oldest vertices).
        _, first_pos = np.unique(sampled, return_index=True)
        targets = sampled[np.sort(first_pos)][:m]
        while len(targets) < m:  # rare fallback for tiny pools
            extra = int(rng.integers(0, v))
            if extra not in targets:
                targets = np.append(targets, extra)
        for t in targets:
            edges[pos] = (v, t)
            pos += 1
            repeated.append(v)
            repeated.append(int(t))
    seed_i, seed_j = np.triu_indices(m + 1, k=1)
    seed_edges = np.column_stack([seed_i, seed_j]).astype(np.int64)
    return np.concatenate([seed_edges, edges[:pos]], axis=0)


def community_noise_edges(
    n: int, num_edges: int, num_communities: int, rng: np.random.Generator
) -> np.ndarray:
    """Random intra-community edges adding clustering/triangles.

    Vertices are assigned round-robin to communities; edges are sampled
    uniformly inside a random community.  This bumps the triangle and
    small-clique counts so that dense query graphs have matches, as they
    do in the real social datasets.
    """
    if num_communities <= 0 or n <= 1:
        return np.zeros((0, 2), dtype=np.int64)
    comm = rng.integers(0, num_communities, size=num_edges)
    size = n // num_communities
    if size < 2:
        return np.zeros((0, 2), dtype=np.int64)
    a = comm * size + rng.integers(0, size, size=num_edges)
    b = comm * size + rng.integers(0, size, size=num_edges)
    edges = np.column_stack([a, b]).astype(np.int64)
    return edges[(edges[:, 0] != edges[:, 1]) & (edges.max(axis=1) < n)]


def social_graph(
    n: int,
    m: int,
    *,
    community_edges: int = 0,
    num_communities: int = 32,
    seed: int = 0,
    name: str = "social",
) -> CSRGraph:
    """Heavy-tailed social/communication graph (enron/gowalla/wikiTalk class)."""
    rng = np.random.default_rng(seed)
    edges = preferential_attachment_edges(n, m, rng)
    if community_edges:
        noise = community_noise_edges(n, community_edges, num_communities, rng)
        edges = np.concatenate([edges, noise], axis=0)
    return from_undirected_edges(edges, num_vertices=n, name=name)


def road_network_graph(
    rows: int,
    cols: int,
    *,
    drop_fraction: float = 0.1,
    shortcut_fraction: float = 0.02,
    seed: int = 0,
    name: str = "road",
) -> CSRGraph:
    """Near-planar road-network-class graph (roadNet-PA/TX/CA class).

    A grid with a fraction of edges removed (dead ends, irregular blocks)
    and a few diagonal shortcuts; mean degree lands near the real road
    networks' ~2.8 and the degree distribution is tightly concentrated.
    """
    if not 0.0 <= drop_fraction < 1.0:
        raise ValueError("drop_fraction must be in [0, 1)")
    rng = np.random.default_rng(seed)
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    horiz = np.column_stack([ids[:, :-1].ravel(), ids[:, 1:].ravel()])
    vert = np.column_stack([ids[:-1, :].ravel(), ids[1:, :].ravel()])
    edges = np.concatenate([horiz, vert], axis=0)
    keep = rng.random(len(edges)) >= drop_fraction
    edges = edges[keep]
    num_short = int(shortcut_fraction * len(edges))
    if num_short and rows > 1 and cols > 1:
        r = rng.integers(0, rows - 1, size=num_short)
        c = rng.integers(0, cols - 1, size=num_short)
        diag = np.column_stack([ids[r, c], ids[r + 1, c + 1]])
        edges = np.concatenate([edges, diag], axis=0)
    return from_undirected_edges(edges, num_vertices=rows * cols, name=name)


def random_graph(
    n: int, p: float, *, seed: int = 0, name: str = "gnp"
) -> CSRGraph:
    """Erdős–Rényi G(n, p), bidirected — used in property tests."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be in [0, 1]")
    rng = np.random.default_rng(seed)
    i, j = np.triu_indices(n, k=1)
    mask = rng.random(len(i)) < p
    edges = np.column_stack([i[mask], j[mask]]).astype(np.int64)
    return from_undirected_edges(edges, num_vertices=n, name=name)
