"""Query-graph generation following the paper's §6.2 procedure.

    "Query graphs with lots of edges are the most difficult ones to solve
    efficiently.  Hence we generated all possible five node graphs and
    then sorted them by the total number of edges in decreasing order and
    selected the top 11 as the query graphs.  For graphs with the same
    number of edges, we broke the tie randomly.  A similar procedure was
    carried out for six node and seven node query graphs."

We enumerate all non-isomorphic simple graphs on ``n`` vertices via the
networkx Graph Atlas (complete up to 7 vertices — exactly the sizes the
paper uses), keep the connected ones (cuTS assumes connected query
graphs), sort by edge count descending, and break ties with a seeded
shuffle so the selection is deterministic per seed.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from .build import from_networkx
from .csr import CSRGraph

__all__ = ["atlas_graphs", "paper_query_set", "all_query_sets", "QUERY_SIZES"]

QUERY_SIZES = (5, 6, 7)
"""Query-vertex counts evaluated in the paper (11 queries each)."""


@lru_cache(maxsize=None)
def _atlas_by_size(n: int) -> tuple:
    """All connected non-isomorphic simple graphs on exactly ``n`` vertices.

    Returns a tuple of networkx Graphs, atlas order.  Only defined for
    ``n <= 7`` (the Graph Atlas bound, which covers the paper's sizes).
    """
    if n > 7:
        raise ValueError("the Graph Atlas only covers graphs up to 7 vertices")
    import networkx as nx
    from networkx.generators.atlas import graph_atlas_g

    out = []
    for g in graph_atlas_g():
        if g.number_of_nodes() != n or g.number_of_nodes() == 0:
            continue
        if nx.is_connected(g):
            out.append(g)
    return tuple(out)


def atlas_graphs(n: int) -> list[CSRGraph]:
    """All connected ``n``-vertex graphs as bidirected CSR graphs."""
    return [
        from_networkx(g, name=f"q{n}v{g.number_of_edges()}e#{i}")
        for i, g in enumerate(_atlas_by_size(n))
    ]


def paper_query_set(n: int, top_k: int = 11, seed: int = 0) -> list[CSRGraph]:
    """The paper's query set for ``n``-vertex queries.

    All connected ``n``-vertex graphs sorted by undirected edge count
    descending, ties broken by a seeded random shuffle, top ``top_k``
    selected.  Graph names encode size/edges/rank, e.g. ``q5_e10_r0``.
    """
    graphs = _atlas_by_size(n)
    edge_counts = np.array([g.number_of_edges() for g in graphs])
    rng = np.random.default_rng(seed)
    tiebreak = rng.permutation(len(graphs))
    # Sort by (-edges, tiebreak): densest first, random within a tie class.
    order = np.lexsort((tiebreak, -edge_counts))
    chosen = order[:top_k]
    out = []
    for rank, idx in enumerate(chosen):
        g = from_networkx(graphs[idx], name=f"q{n}_e{edge_counts[idx]}_r{rank}")
        out.append(g)
    return out


def all_query_sets(top_k: int = 11, seed: int = 0) -> dict[int, list[CSRGraph]]:
    """The full 33-query workload: top-``top_k`` for each size in 5/6/7."""
    return {n: paper_query_set(n, top_k=top_k, seed=seed) for n in QUERY_SIZES}
